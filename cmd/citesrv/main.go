// Command citesrv serves citations over HTTP — the integration surface a
// database owner would put in front of GtoPdb-style resources.
//
//	citesrv -addr :8437 -timeout 30s
//
//	POST /v1/cite          → one citation (v1 wire schema below)
//	POST /v1/cite/stream   → per-tuple citations as NDJSON, streamed
//	POST /v1/cite/batch    → a batch of citations, plan-shared
//	POST /cite             → deprecated shim for /v1/cite (same schema)
//	GET  /views            → the citation views
//	GET  /stats            → cache, plan-cache + shard stats, uptime
//	GET  /metrics          → Prometheus text exposition (0.0.4)
//	GET  /v1/slow          → slow-query ring buffer, newest first
//	GET  /v1/health        → readiness: shard breaker states, 503 when open
//	GET  /debug/pprof/*    → runtime profiling
//	GET  /healthz          → ok (liveness)
//
// # v1 wire schema
//
// A citation request is a JSON object with exactly one query field and
// optional per-request knobs (zero values mean "server default"):
//
//	{
//	  "sql":            "SELECT f.FName FROM Family f ...",  // xor "datalog"
//	  "datalog":        "Q(N) :- Family(F, N, Ty), ...",
//	  "format":         "json",   // json | json-compact | xml | bibtex | text
//	  "parallel":       0,        // 1 = sequential, n > 1 caps the workers
//	  "max_rewritings": 0,        // bound rewriting enumeration
//	  "max_tuples":     0,        // bound the answer size; beyond it → 422
//	  "explain":        false,    // attach a per-stage pipeline trace
//	  "min_shard_coverage": 0,    // accept partial citations from >= k shards
//	  "shard_attempts":     0     // per-shard attempt budget override
//	}
//
// A successful response:
//
//	{
//	  "columns":     ["N"],
//	  "rows":        [["adenosine receptors"], ...],
//	  "rewritings":  ["Q(N) :- V1(F; F, N), ...", ...],
//	  "polynomials": ["CV1(\"11\")·CV2(\"11\") + ...", ...],
//	  "citation":    "{...}",   // rendered in the requested format
//	  "format":      "json",
//	  "explain":     {"stages": [...]}  // only when the request set explain
//	}
//
// With "explain": true the response carries the request's per-stage
// pipeline trace (parse → rewrite → compile → views → eval → gather →
// render, with durations, tuple/frame counts, cache outcomes, the strategy
// chosen and per-shard timings). The trace never changes the citation —
// explained and plain responses carry byte-identical citations — but an
// explained request bypasses the citation cache to produce a real trace.
//
// # Streaming: /v1/cite/stream
//
// The streaming endpoint accepts the same request object as /v1/cite and
// answers with newline-delimited JSON (Content-Type application/x-ndjson,
// chunked): one tuple-citation object per line, in the deterministic result
// order, flushed as soon as that tuple's citation is rendered — the first
// line reaches the client before later tuples' citations exist. The final
// line is always a trailer object carrying the total and, when the stream
// died mid-flight, the typed error:
//
//	{"index": 0, "values": ["adenosine receptors"],
//	 "polynomial": "CV1(\"11\")·CV2(\"11\")", "citation": {...}}
//	{"index": 1, ...}
//	{"trailer": {"tuples": 2, "stage_ns": {"rewrite": 52000, "eval": 410000, ...}}}
//
//	{"index": 0, ...}
//	{"trailer": {"tuples": 1, "error": {"code": "canceled", "message": "..."}}}
//
// The trailer's stage_ns object totals the pipeline's per-stage wall-clock
// time in nanoseconds (same stage names as the materialized endpoint's
// explain report), so streaming clients get the same visibility.
//
// A request that fails before the first tuple is written — parse error,
// unsatisfiable bound, pre-stream cancellation — gets the plain typed error
// envelope with its usual HTTP status instead of a 200 NDJSON stream.
// Citations stream per tuple; the aggregated result-set citation is never
// materialized, so very large answers flow in constant server memory.
//
// # Batches: /v1/cite/batch
//
// A batch request wraps many requests; the response carries one slot per
// request in order, each with its own status and either a result or a typed
// error — a failing request costs only its own slot, the others still
// evaluate:
//
//	POST /v1/cite/batch   {"requests": [{...}, {...}]}
//	                    → {"results":  [{"status": 200, "result": {...}},
//	                                    {"status": 400, "error": {"code": "parse", ...}}]}
//
// The response status is 200 whenever any slot differs from the rest; when
// every request fails with one uniform status (all unparsable, the shared
// deadline expired, ...) that 4xx/5xx is also the response status, so
// naive clients and proxies still see the failure. Requests in one batch
// that canonicalize to the same query share one logical-plan compilation
// and one evaluation, and view materialization is shared across the whole
// batch — k copies of one query cost one citation.
//
// # Errors
//
// Failures use a typed error envelope mapped from the citare error
// taxonomy:
//
//	{"error": {"code": "parse", "message": "...", "index": 0}}
//
//	code         HTTP status
//	parse        400  (bad query text, unknown format, bad request shape)
//	schema       400  (query vs schema mismatch)
//	timeout      408  (server -timeout or client deadline exceeded)
//	canceled     499  (client went away mid-evaluation)
//	limit        422  (max_tuples exceeded)
//	unavailable  503  (a shard stayed unreachable past its attempt budget)
//	partial      206  (degraded citation accepted under min_shard_coverage)
//	internal     500
//
// Every request runs under a context: the -timeout flag wraps each request
// in a deadline, and a client disconnect cancels evaluation at the next
// partition or frame boundary — a dead client stops burning cores.
//
// # Resilience
//
// With -shards N > 1 and -resilience (the default), scatter-gather
// evaluation runs through the fault-tolerant driver: per-shard attempt
// deadlines (-shard-attempt-timeout), bounded retries with jittered
// exponential backoff (-shard-attempts), optional hedged duplicate scans
// (-shard-hedge-after), and a per-shard circuit breaker
// (-breaker-threshold, -breaker-cooldown) shared across requests. A shard
// that stays unreachable past its budget fails the request with 503
// "unavailable" — unless the request set "min_shard_coverage": k, in which
// case a citation covering at least k shards is returned as 206 with a
// "coverage" object naming the shards that answered, were pruned, or were
// skipped (and, on /v1/cite/stream, the same object on the trailer line).
// Breaker states are surfaced on /stats, on the /v1/health readiness
// probe (503 once any breaker opens), and as citare_shard_* /metrics
// series. On SIGTERM/SIGINT the server stops accepting connections and
// drains in-flight requests — streams flush their trailers — bounded by
// the -timeout grace period.
//
// All requests are served concurrently from one shared, cached citation
// engine: the engine cites against an immutable database snapshot, and
// equivalent concurrent queries collapse into a single computation. With
// -shards N > 1 the database is hash-partitioned and every request routes
// through the sharded engine (scatter-gather evaluation with shard
// pruning); citations are byte-identical to the unsharded engine's.
//
// # Observability
//
// Every request gets a process-unique ID, echoed in the X-Request-ID
// response header, in the request_id field of error envelopes, and in the
// structured access log (one line per request: ID, method, route, status,
// duration, tuples emitted; -quiet suppresses it).
//
// GET /metrics serves the Prometheus text format: cite latency and
// per-stage histograms (citare_cite_duration_seconds,
// citare_stage_duration_seconds{stage=...}), cite/tuple/error counters,
// result- and token-cache counters, plan-cache counters by tier
// (citare_plan_cache_{hits,misses}_total{tier="logical"|"physical"}),
// per-shard scan/lookup counts on sharded deployments, HTTP request
// counters and latencies by route, and uptime.
//
// GET /v1/slow serves a fixed-capacity ring of the most recent requests
// slower than -slow-threshold, newest first, each carrying its full
// per-stage pipeline trace — the workflow is: watch /metrics for a latency
// regression, pull /v1/slow to see which stage (and which shard) the slow
// requests spent their time in. -slow-capacity bounds the ring;
// -slow-threshold 0 disables capture.
//
// GET /debug/pprof/ exposes the standard runtime profiles.
//
// # Persistence
//
// With -data-dir the server keeps the database in a log-structured store
// on disk (internal/lsm). The first boot seeds the store from -data (or
// the paper instance) and commits it as version 1; every later boot
// recovers the exact state from the WAL and SSTables — no CSV reload —
// including all committed versions for time travel. On shutdown the
// memtable is flushed and the WAL synced, so a restart reopens without
// replay work. Store internals (memtable and WAL bytes, per-level SSTable
// counts, flush and compaction totals) appear in the "lsm" section of
// /stats and as citare_lsm_* series on /metrics. With -shards N > 1 the
// persistent head snapshot is hash-partitioned into memory for
// scatter-gather serving; the store on disk stays the durable source of
// truth.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"citare"
	"citare/internal/backend"
	"citare/internal/eval"
	"citare/internal/gtopdb"
	"citare/internal/lsm"
	"citare/internal/obs"
	"citare/internal/shard"
	"citare/internal/storage"
)

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request" — the conventional status for work abandoned by the client.
const statusClientClosedRequest = 499

type server struct {
	citer        *citare.CachedCiter
	viewsProgram string
	shards       int           // engine shard count (1 = unsharded)
	timeout      time.Duration // per-request deadline (0 = none)

	// Observability (all optional: a zero server serves without them).
	start    time.Time     // for /stats uptime and the uptime gauge
	quiet    bool          // -quiet: suppress the access log
	reg      *obs.Registry // /metrics registry; nil = not initialized
	slow     *slowLog      // /v1/slow ring; nil = capture disabled
	idPrefix string        // per-process request-ID prefix
	reqSeq   atomic.Uint64 // request-ID sequence

	// lsm is the persistent store behind -data-dir; nil on an in-memory
	// server. Surfaced on /stats ("lsm" section) and /metrics.
	lsm *lsm.Store
}

// citeRequest is the v1 wire form of one citation request (the legacy
// /cite endpoint accepts the same shape and ignores the option fields it
// predates — they default to zero).
type citeRequest struct {
	SQL           string `json:"sql,omitempty"`
	Datalog       string `json:"datalog,omitempty"`
	Format        string `json:"format,omitempty"`
	Parallel      int    `json:"parallel,omitempty"`
	MaxRewritings int    `json:"max_rewritings,omitempty"`
	MaxTuples     int    `json:"max_tuples,omitempty"`
	Explain       bool   `json:"explain,omitempty"`
	// MinShardCoverage and ShardAttempts set the request's degradation
	// policy on a resilient sharded server: accept a partial citation from
	// at least k shards (206 + coverage), and override the per-shard attempt
	// budget. Zero keeps the server defaults (full coverage required).
	MinShardCoverage int `json:"min_shard_coverage,omitempty"`
	ShardAttempts    int `json:"shard_attempts,omitempty"`
}

// request translates the wire form to the library's Request.
func (r citeRequest) request() citare.Request {
	return citare.Request{
		SQL:              r.SQL,
		Datalog:          r.Datalog,
		Format:           r.Format,
		Parallel:         r.Parallel,
		MaxRewritings:    r.MaxRewritings,
		MaxTuples:        r.MaxTuples,
		Explain:          r.Explain,
		MinShardCoverage: r.MinShardCoverage,
		ShardAttempts:    r.ShardAttempts,
	}
}

// queryText returns the request's query source, whichever field holds it.
func (r citeRequest) queryText() string {
	if r.SQL != "" {
		return r.SQL
	}
	return r.Datalog
}

type citeResponse struct {
	Columns     []string        `json:"columns"`
	Rows        [][]string      `json:"rows"`
	Rewritings  []string        `json:"rewritings"`
	Polynomials []string        `json:"polynomials"`
	Citation    string          `json:"citation"`
	Format      string          `json:"format"`
	Explain     *citare.Explain `json:"explain,omitempty"`
	// Coverage reports which shards contributed; present only on degraded
	// (206) responses from a resilient sharded server.
	Coverage *citare.Coverage `json:"coverage,omitempty"`
}

type batchRequest struct {
	Requests []citeRequest `json:"requests"`
}

// batchItemResult is one request's slot in the batch envelope: its own
// HTTP-equivalent status plus either a result or a typed error.
type batchItemResult struct {
	Status int           `json:"status"`
	Result *citeResponse `json:"result,omitempty"`
	Error  *errorBody    `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchItemResult `json:"results"`
}

// streamTuple is one NDJSON line of /v1/cite/stream: one answer tuple with
// its citation polynomial and rendered citation record.
type streamTuple struct {
	Index      int             `json:"index"`
	Values     []string        `json:"values"`
	Polynomial string          `json:"polynomial"`
	Citation   json.RawMessage `json:"citation"`
}

// streamTrailerLine is the final NDJSON line of /v1/cite/stream.
type streamTrailerLine struct {
	Trailer streamTrailer `json:"trailer"`
}

type streamTrailer struct {
	// Tuples counts the tuple lines written before the trailer.
	Tuples int `json:"tuples"`
	// StageNs totals the pipeline's per-stage wall-clock time in
	// nanoseconds (stage names match the Explain report), giving streaming
	// clients the same visibility as the materialized path.
	StageNs map[string]int64 `json:"stage_ns,omitempty"`
	// Error reports a stream that died after tuples were already written;
	// absent on a complete stream.
	Error *errorBody `json:"error,omitempty"`
	// Coverage reports which shards contributed when the stream completed
	// degraded (every delivered tuple is valid, skipped shards may have
	// withheld others); absent on a full-coverage stream.
	Coverage *citare.Coverage `json:"coverage,omitempty"`
}

// errorEnvelope is the v1 error wire form.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Index names the first failing request of a batch; nil for /v1/cite.
	Index *int `json:"index,omitempty"`
	// RequestID echoes the request's X-Request-ID, correlating the error
	// with the access log; empty outside the request middleware.
	RequestID string `json:"request_id,omitempty"`
}

// classifyStatus maps a tagged citare error to its HTTP status and wire
// code: 400 parse/schema, 408 deadline, 499 client-gone, 422 limit, 503
// shards unavailable, 206 partial citation, 500 anything untagged.
func classifyStatus(err error) (int, string) {
	switch {
	case errors.Is(err, citare.ErrParse):
		return http.StatusBadRequest, "parse"
	case errors.Is(err, citare.ErrSchema):
		return http.StatusBadRequest, "schema"
	case errors.Is(err, citare.ErrLimit):
		return http.StatusUnprocessableEntity, "limit"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout, "timeout"
	case errors.Is(err, citare.ErrCanceled):
		return statusClientClosedRequest, "canceled"
	case errors.Is(err, citare.ErrShardUnavailable):
		return http.StatusServiceUnavailable, "unavailable"
	case errors.Is(err, citare.ErrPartial):
		return http.StatusPartialContent, "partial"
	}
	return http.StatusInternalServerError, "internal"
}

// writeError emits the typed error envelope, echoing the request ID when
// the middleware assigned one. index, when >= 0, names the failing request
// of a batch.
func writeError(w http.ResponseWriter, r *http.Request, err error, index int) {
	status, code := classifyStatus(err)
	body := errorBody{Code: code, Message: err.Error(), RequestID: requestID(r.Context())}
	if index >= 0 {
		body.Index = &index
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if encErr := json.NewEncoder(w).Encode(errorEnvelope{Error: body}); encErr != nil {
		log.Printf("citesrv: encode error envelope: %v", encErr)
	}
}

// requestCtx derives the evaluation context for one HTTP request: the
// request's own context (canceled when the client goes away) bounded by
// the server's -timeout deadline.
func (s *server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return context.WithCancel(r.Context())
}

// respond shapes one citation into the wire response.
func respond(res *citare.Citation) (citeResponse, error) {
	rendered, err := res.Rendered()
	if err != nil {
		return citeResponse{}, err
	}
	resp := citeResponse{
		Columns:    res.Columns(),
		Rows:       res.Rows(),
		Rewritings: res.Rewritings(),
		Citation:   rendered,
		Format:     res.Format(),
	}
	for i := 0; i < res.NumTuples(); i++ {
		p, err := res.TuplePolynomialAt(i)
		if err != nil {
			return citeResponse{}, err
		}
		resp.Polynomials = append(resp.Polynomials, p)
	}
	return resp, nil
}

// handleCite serves POST /v1/cite (and, via the shim, the legacy /cite).
func (s *server) handleCite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req citeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, fmt.Errorf("%w: %v", citare.ErrParse, err), -1)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ri := infoFrom(ctx)
	ri.setQuery(req.queryText())
	// Trace the pipeline when the client asked for an explain report or the
	// slow-query log might want the trace; Cite reuses a trace already on
	// the context.
	if req.Explain || s.slow != nil {
		tr := obs.NewTrace()
		ctx = obs.NewContext(ctx, tr, obs.NoSpan)
		ri.setTrace(tr)
	}
	res, err := s.citer.Cite(ctx, req.request())
	// A degraded citation travels as (non-nil Citation, *PartialError): the
	// response body is the usable citation plus its coverage report, under
	// 206 rather than 200. Every other error is terminal.
	var partial *citare.PartialError
	if err != nil && !(errors.As(err, &partial) && res != nil) {
		writeError(w, r, err, -1)
		return
	}
	ri.setTuples(res.NumTuples())
	resp, err := respond(res)
	if err != nil {
		writeError(w, r, err, -1)
		return
	}
	if req.Explain {
		resp.Explain = res.Explain()
	}
	w.Header().Set("Content-Type", "application/json")
	if partial != nil {
		resp.Coverage = partial.Coverage
		w.WriteHeader(http.StatusPartialContent)
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("citesrv: encode: %v", err)
	}
}

// handleCiteStream serves POST /v1/cite/stream: per-tuple citations as
// NDJSON, one line per tuple flushed as soon as its citation renders, a
// trailer line last. Failures before the first tuple fall back to the plain
// typed-error response with its HTTP status.
func (s *server) handleCiteStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req citeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, fmt.Errorf("%w: %v", citare.ErrParse, err), -1)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ri := infoFrom(ctx)
	ri.setQuery(req.queryText())
	// Streams always carry a trace: the trailer reports per-stage timing
	// totals so streaming clients get the same visibility as Explain.
	tr := obs.NewTrace()
	ctx = obs.NewContext(ctx, tr, obs.NoSpan)
	ri.setTrace(tr)
	// Header().Set sends nothing by itself: if the stream fails before the
	// first tuple line, writeError below still replaces the Content-Type and
	// picks the real status.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // Encode appends the NDJSON newline
	sent := 0
	err := s.citer.CiteEach(ctx, req.request(), func(t citare.Tuple) error {
		line := streamTuple{
			Index:      t.Index,
			Values:     t.Values,
			Polynomial: t.Polynomial,
			Citation:   json.RawMessage(t.CitationJSON),
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
		sent++
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	ri.setTuples(sent)
	// A degraded stream still delivered every tuple it could; the partial
	// report rides the trailer's coverage field, not the error path.
	var partial *citare.PartialError
	if errors.As(err, &partial) {
		err = nil
	}
	if err != nil && sent == 0 {
		writeError(w, r, err, -1)
		return
	}
	trailer := streamTrailer{Tuples: sent, StageNs: tr.Report().StageTotalsNs()}
	if partial != nil {
		trailer.Coverage = partial.Coverage
	}
	if err != nil {
		// The stream is already committed as 200 NDJSON; the trailer carries
		// the typed error instead of a status line.
		_, code := classifyStatus(err)
		trailer.Error = &errorBody{Code: code, Message: err.Error()}
	}
	if err := enc.Encode(streamTrailerLine{Trailer: trailer}); err != nil {
		log.Printf("citesrv: encode trailer: %v", err)
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// handleCiteBatch serves POST /v1/cite/batch: the whole batch shares one
// deadline and evaluates plan-shared through CiteBatchItems, so a failing
// request fills only its own slot. The response status stays 200 unless
// every slot failed with one uniform status.
func (s *server) handleCiteBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var breq batchRequest
	if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
		writeError(w, r, fmt.Errorf("%w: %v", citare.ErrParse, err), -1)
		return
	}
	if len(breq.Requests) == 0 {
		writeError(w, r, fmt.Errorf("%w: empty batch", citare.ErrParse), -1)
		return
	}
	reqs := make([]citare.Request, len(breq.Requests))
	for i, cr := range breq.Requests {
		reqs[i] = cr.request()
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ri := infoFrom(ctx)
	ri.setQuery(fmt.Sprintf("batch of %d", len(reqs)))
	items := s.citer.CiteBatchItems(ctx, reqs)
	resp := batchResponse{Results: make([]batchItemResult, len(items))}
	uniform := 0 // shared status of every slot so far; -1 once they diverge
	for i, item := range items {
		itemErr := item.Err
		// A degraded item carries both a usable Citation and a *PartialError:
		// its slot gets the result with coverage under its own 206 status.
		var partial *citare.PartialError
		if itemErr != nil && errors.As(itemErr, &partial) && item.Citation != nil {
			itemErr = nil
		}
		if itemErr == nil && item.Citation != nil {
			shaped, err := respond(item.Citation)
			if err == nil {
				ri.addTuples(item.Citation.NumTuples())
				status := http.StatusOK
				if partial != nil {
					shaped.Coverage = partial.Coverage
					status = http.StatusPartialContent
				}
				resp.Results[i] = batchItemResult{Status: status, Result: &shaped}
				if uniform == 0 {
					uniform = status
				} else if uniform != status {
					uniform = -1
				}
				continue
			}
			itemErr = err
		}
		status, code := classifyStatus(itemErr)
		resp.Results[i] = batchItemResult{Status: status, Error: &errorBody{Code: code, Message: itemErr.Error()}}
		if uniform == 0 {
			uniform = status
		} else if uniform != status {
			uniform = -1
		}
	}
	status := http.StatusOK
	if uniform > 0 && uniform != http.StatusOK {
		status = uniform // every request failed the same way
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("citesrv: encode: %v", err)
	}
}

func (s *server) handleViews(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.viewsProgram)
}

// shardStats is one cache shard's (or the total's) counters on /stats.
type shardStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// planCacheStats is one plan-cache tier's counters on /stats.
type planCacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

type statsResponse struct {
	shardStats                   // aggregated totals across cache shards
	CacheShards   []shardStats   `json:"cache_shards"`
	EngineShards  int            `json:"engine_shards"`
	Waits         uint64         `json:"singleflight_waits"`
	TokenCache    shardStats     `json:"token_cache"`
	LogicalPlans  planCacheStats `json:"logical_plans"`
	PhysicalPlans planCacheStats `json:"physical_plans"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	// Breakers reports each shard's circuit-breaker state on a resilient
	// sharded server; absent otherwise.
	Breakers []eval.BreakerInfo `json:"breakers,omitempty"`
	// LSM reports the persistent store internals (memtable, WAL, per-level
	// SSTable counts, flush/compaction totals) when the server runs with
	// -data-dir; absent on an in-memory server.
	LSM *lsm.StoreStats `json:"lsm,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	total := s.citer.CacheStats()
	per := s.citer.CacheShardStats()
	resp := statsResponse{
		shardStats:   shardStats{Hits: total.Hits, Misses: total.Misses, Evictions: total.Evictions},
		CacheShards:  make([]shardStats, len(per)),
		EngineShards: s.shards,
		Waits:        total.Waits,
	}
	for i, st := range per {
		resp.CacheShards[i] = shardStats{Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions}
	}
	eng := s.citer.Citer().Engine()
	tok := eng.TokenCacheStats()
	resp.TokenCache = shardStats{Hits: tok.Hits, Misses: tok.Misses, Evictions: tok.Evictions}
	resp.LogicalPlans.Hits, resp.LogicalPlans.Misses = eng.LogicalPlanStats()
	resp.PhysicalPlans.Hits, resp.PhysicalPlans.Misses = eng.PhysicalPlanStats()
	if !s.start.IsZero() {
		resp.UptimeSeconds = time.Since(s.start).Seconds()
	}
	resp.Breakers = eng.BreakerStates()
	if s.lsm != nil {
		st := s.lsm.Stats()
		resp.LSM = &st
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("citesrv: encode: %v", err)
	}
}

// healthResponse is the /v1/health readiness report.
type healthResponse struct {
	// Status is "ok" when every shard is reachable (or resilience is off),
	// "degraded" when any breaker is open or half-open.
	Status string `json:"status"`
	// Breakers carries the per-shard circuit-breaker states on a resilient
	// sharded server; absent otherwise.
	Breakers []eval.BreakerInfo `json:"breakers,omitempty"`
}

// handleHealth serves GET /v1/health: a readiness probe that reflects the
// shard circuit breakers. A server with an open breaker answers 503 — it is
// still serving (partial-tolerant requests keep working) but a load
// balancer should prefer a healthier replica. /healthz stays the dumb
// liveness probe.
func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := healthResponse{Status: "ok", Breakers: s.citer.Citer().Engine().BreakerStates()}
	status := http.StatusOK
	for _, b := range resp.Breakers {
		if b.State != string(eval.BreakerClosed) {
			resp.Status = "degraded"
			status = http.StatusServiceUnavailable
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("citesrv: encode: %v", err)
	}
}

// mux assembles the server's routes — the v1 API plus the legacy /cite
// shim, which shares the v1 handler (and therefore the v1 statuses) — and
// wraps them in the request middleware (IDs, access log, HTTP metrics,
// slow-query capture).
func (s *server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cite", s.handleCite)
	mux.HandleFunc("/v1/cite/stream", s.handleCiteStream)
	mux.HandleFunc("/v1/cite/batch", s.handleCiteBatch)
	mux.HandleFunc("/cite", s.handleCite) // deprecated: use /v1/cite
	mux.HandleFunc("/views", s.handleViews)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/slow", s.handleSlow)
	mux.HandleFunc("/v1/health", s.handleHealth)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s.withObservability(mux)
}

// serve runs the HTTP server on l until ctx is canceled, then drains
// gracefully: the listener closes (new connections are refused), in-flight
// requests — including NDJSON streams, which still flush their trailers —
// get a bounded grace period to finish, and only then does the server exit.
// The grace period is the per-request -timeout plus a small margin (a
// request admitted just before shutdown may legitimately run that long), or
// 30s when -timeout is 0.
func (s *server) serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{Handler: s.mux()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	grace := 30 * time.Second
	if s.timeout > 0 {
		grace = s.timeout + 2*time.Second
	}
	log.Printf("citesrv: shutting down, draining in-flight requests (grace %v)", grace)
	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		// Stragglers outlived the grace period; cut them off.
		srv.Close()
		return err
	}
	return nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8437", "listen address")
		dataDir   = flag.String("data", "", "directory of <Relation>.csv files (defaults to the paper instance)")
		lsmDir    = flag.String("data-dir", "", "persistent LSM store directory: recover on boot if populated, else seed from -data or the paper instance")
		viewsPath = flag.String("views", "", "citation-views program file (defaults to the paper's views)")
		parallel  = flag.Int("parallel", 0, "binding-enumeration workers per query (0 = adaptive from plan cardinalities, 1 = sequential)")
		shards    = flag.Int("shards", 1, "hash-partition the database across N shards (<=1 unsharded)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request evaluation deadline (0 disables)")
		quiet     = flag.Bool("quiet", false, "suppress the per-request access log")
		slowThr   = flag.Duration("slow-threshold", 500*time.Millisecond, "capture requests at least this slow in the /v1/slow ring (0 disables)")
		slowCap   = flag.Int("slow-capacity", 128, "slow-query ring capacity")

		resilience = flag.Bool("resilience", true, "fault-tolerant scatter-gather on sharded deployments (retries, breakers, partial citations)")
		attemptTO  = flag.Duration("shard-attempt-timeout", 2*time.Second, "per-shard scan attempt deadline (resilient sharded only)")
		attempts   = flag.Int("shard-attempts", 3, "per-shard attempt budget, first try included (resilient sharded only)")
		hedgeAfter = flag.Duration("shard-hedge-after", 0, "duplicate a straggling shard scan after this long, first finisher wins (0 disables)")
		brkThresh  = flag.Int("breaker-threshold", 3, "consecutive shard failures that open its circuit breaker")
		brkCool    = flag.Duration("breaker-cooldown", 5*time.Second, "cooldown before an open breaker probes the shard again")
	)
	flag.Parse()

	db := gtopdb.PaperInstance()
	viewsProgram := gtopdb.ViewsProgram
	if *viewsPath != "" {
		raw, err := os.ReadFile(*viewsPath)
		if err != nil {
			log.Fatalf("citesrv: %v", err)
		}
		viewsProgram = string(raw)
	}
	loadCSV := func() {
		db = storage.NewDB(gtopdb.Schema())
		if _, err := storage.LoadDir(db, *dataDir); err != nil {
			log.Fatalf("citesrv: %v", err)
		}
	}
	opts := []citare.Option{
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()),
		citare.WithParallelEval(*parallel),
	}
	var (
		citer *citare.Citer
		err   error
		pers  *backend.LSM // persistent backend behind -data-dir; nil otherwise
	)
	if *lsmDir != "" {
		pers, err = backend.OpenLSM(*lsmDir, gtopdb.Schema(), lsm.Options{})
		if err != nil {
			log.Fatalf("citesrv: open persistent store %s: %v", *lsmDir, err)
		}
		if storeIsEmpty(pers) {
			// First boot: seed the store from -data (or the paper instance)
			// and commit it as version 1. Every later boot recovers from the
			// WAL and SSTables instead — no CSV reload.
			if *dataDir != "" {
				loadCSV()
			}
			n, serr := seedStore(pers, db)
			if serr != nil {
				log.Fatalf("citesrv: seed persistent store %s: %v", *lsmDir, serr)
			}
			log.Printf("citesrv: seeded persistent store %s (%d tuples, committed as version 1)", *lsmDir, n)
		} else {
			if *dataDir != "" {
				log.Printf("citesrv: persistent store %s already populated; ignoring -data", *lsmDir)
			}
			st := pers.Store().Stats()
			total := 0
			for _, n := range st.Live {
				total += n
			}
			log.Printf("citesrv: recovered persistent store %s (version %d, %d live tuples, %d committed versions)",
				*lsmDir, st.Version, total, len(pers.Versions()))
		}
	} else if *dataDir != "" {
		loadCSV()
	}
	switch {
	case pers != nil && *shards > 1:
		// Sharded serving over persistent data: hash-partition an in-memory
		// copy of the store's head snapshot for scatter-gather evaluation.
		// The store on disk stays the durable source of truth.
		v, verr := pers.Snapshot()
		if verr != nil {
			log.Fatalf("citesrv: %v", verr)
		}
		sdb, serr := shard.FromView(pers.Schema(), v, *shards)
		v.Release()
		if serr != nil {
			log.Fatalf("citesrv: %v", serr)
		}
		citer, err = citare.NewShardedFromProgram(sdb, viewsProgram, opts...)
	case pers != nil:
		citer, err = citare.NewBackendFromProgram(pers, viewsProgram, opts...)
	case *shards > 1:
		sdb, serr := shard.FromDB(db, *shards)
		if serr != nil {
			log.Fatalf("citesrv: %v", serr)
		}
		citer, err = citare.NewShardedFromProgram(sdb, viewsProgram, opts...)
	default:
		*shards = 1
		citer, err = citare.NewFromProgram(db, viewsProgram, opts...)
	}
	if err != nil {
		log.Fatalf("citesrv: %v", err)
	}
	if *shards > 1 {
		log.Printf("citesrv: database hash-partitioned across %d shards", *shards)
	}
	s := &server{
		citer:        citare.NewCached(citer),
		viewsProgram: viewsProgram,
		shards:       *shards,
		timeout:      *timeout,
		quiet:        *quiet,
		slow:         newSlowLog(*slowThr, *slowCap),
		idPrefix:     fmt.Sprintf("%x", time.Now().UnixNano()&0xffffff),
	}
	if pers != nil {
		s.lsm = pers.Store()
	}
	s.initObservability()
	// Resilience wires up after the registry exists so its retry/hedge/
	// breaker counters land on /metrics. SetResilience is a pre-serving
	// configuration call; no requests are in flight yet.
	if *shards > 1 && *resilience {
		citer.Engine().SetResilience(&citare.ResilienceConfig{
			AttemptTimeout:   *attemptTO,
			MaxAttempts:      *attempts,
			HedgeAfter:       *hedgeAfter,
			BreakerThreshold: *brkThresh,
			BreakerCooldown:  *brkCool,
			Metrics:          obs.NewResilienceMetrics(s.reg),
		})
		log.Printf("citesrv: resilient scatter-gather enabled (attempt timeout %v, %d attempts, hedge %v, breaker %d/%v)",
			*attemptTO, *attempts, *hedgeAfter, *brkThresh, *brkCool)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("citesrv: %v", err)
	}
	log.Printf("citesrv: listening on %s (request timeout %v)", l.Addr(), *timeout)
	if err := s.serve(ctx, l); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("citesrv: %v", err)
	}
	if pers != nil {
		// Flush the memtable and sync the WAL so the next boot recovers the
		// exact served state without replay work.
		if cerr := pers.Close(); cerr != nil {
			log.Fatalf("citesrv: close persistent store: %v", cerr)
		}
		log.Printf("citesrv: persistent store flushed and closed")
	}
	log.Printf("citesrv: drained, bye")
}

// storeIsEmpty reports whether a just-opened persistent store has neither
// committed versions nor live tuples — i.e. this is the first boot and the
// store needs seeding.
func storeIsEmpty(b *backend.LSM) bool {
	if len(b.Versions()) > 0 {
		return false
	}
	for _, n := range b.Store().Stats().Live {
		if n > 0 {
			return false
		}
	}
	return true
}

// seedStore copies every live tuple of db into the persistent backend and
// commits the result as version 1, returning the tuple count.
func seedStore(b *backend.LSM, db *storage.DB) (int, error) {
	n := 0
	for _, rs := range db.Schema().Relations() {
		var ierr error
		db.Relation(rs.Name).Scan(func(t storage.Tuple) bool {
			if ierr = b.Insert(rs.Name, t...); ierr != nil {
				return false
			}
			n++
			return true
		})
		if ierr != nil {
			return n, ierr
		}
	}
	if _, err := b.Commit("initial load"); err != nil {
		return n, err
	}
	return n, nil
}
