// Command citesrv serves citations over HTTP — the integration surface a
// database owner would put in front of GtoPdb-style resources.
//
//	citesrv -addr :8437
//
//	POST /cite    {"sql": "...", "format": "json"}    → citation
//	POST /cite    {"datalog": "...", "format": "xml"} → citation
//	GET  /views                                        → the citation views
//	GET  /stats                                        → cache + shard stats
//	GET  /healthz                                      → ok
//
// All requests are served concurrently from one shared, cached citation
// engine: the engine cites against an immutable database snapshot, and
// equivalent concurrent queries collapse into a single computation. With
// -shards N > 1 the database is hash-partitioned and every request routes
// through the sharded engine (scatter-gather evaluation with shard
// pruning); citations are byte-identical to the unsharded engine's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"citare"
	"citare/internal/gtopdb"
	"citare/internal/shard"
	"citare/internal/storage"
)

type server struct {
	citer        *citare.CachedCiter
	viewsProgram string
	shards       int // engine shard count (1 = unsharded)
}

type citeRequest struct {
	SQL     string `json:"sql,omitempty"`
	Datalog string `json:"datalog,omitempty"`
	Format  string `json:"format,omitempty"`
}

type citeResponse struct {
	Columns     []string   `json:"columns"`
	Rows        [][]string `json:"rows"`
	Rewritings  []string   `json:"rewritings"`
	Polynomials []string   `json:"polynomials"`
	Citation    string     `json:"citation"`
	Format      string     `json:"format"`
}

func (s *server) handleCite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req citeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if (req.SQL == "") == (req.Datalog == "") {
		http.Error(w, `provide exactly one of "sql" or "datalog"`, http.StatusBadRequest)
		return
	}
	if req.Format == "" {
		req.Format = "json"
	}
	var (
		res *citare.Citation
		err error
	)
	if req.SQL != "" {
		res, err = s.citer.CiteSQL(req.SQL)
	} else {
		res, err = s.citer.CiteDatalog(req.Datalog)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	rendered, err := res.Render(req.Format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := citeResponse{
		Columns:    res.Columns(),
		Rows:       res.Rows(),
		Rewritings: res.Rewritings(),
		Citation:   rendered,
		Format:     req.Format,
	}
	for i := 0; i < res.NumTuples(); i++ {
		resp.Polynomials = append(resp.Polynomials, res.TuplePolynomial(i))
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("citesrv: encode: %v", err)
	}
}

func (s *server) handleViews(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.viewsProgram)
}

// shardStats is one cache shard's (or the total's) counters on /stats.
type shardStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

type statsResponse struct {
	shardStats                // aggregated totals across cache shards
	CacheShards  []shardStats `json:"cache_shards"`
	EngineShards int          `json:"engine_shards"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	total := s.citer.CacheStats()
	per := s.citer.CacheShardStats()
	resp := statsResponse{
		shardStats:   shardStats{Hits: total.Hits, Misses: total.Misses, Evictions: total.Evictions},
		CacheShards:  make([]shardStats, len(per)),
		EngineShards: s.shards,
	}
	for i, st := range per {
		resp.CacheShards[i] = shardStats{Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("citesrv: encode: %v", err)
	}
}

func main() {
	var (
		addr      = flag.String("addr", ":8437", "listen address")
		dataDir   = flag.String("data", "", "directory of <Relation>.csv files (defaults to the paper instance)")
		viewsPath = flag.String("views", "", "citation-views program file (defaults to the paper's views)")
		parallel  = flag.Int("parallel", 0, "binding-enumeration workers per query (0 = adaptive from plan cardinalities, 1 = sequential)")
		shards    = flag.Int("shards", 1, "hash-partition the database across N shards (<=1 unsharded)")
	)
	flag.Parse()

	db := gtopdb.PaperInstance()
	viewsProgram := gtopdb.ViewsProgram
	if *viewsPath != "" {
		raw, err := os.ReadFile(*viewsPath)
		if err != nil {
			log.Fatalf("citesrv: %v", err)
		}
		viewsProgram = string(raw)
	}
	if *dataDir != "" {
		db = storage.NewDB(gtopdb.Schema())
		if _, err := storage.LoadDir(db, *dataDir); err != nil {
			log.Fatalf("citesrv: %v", err)
		}
	}
	opts := []citare.Option{
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()),
		citare.WithParallelEval(*parallel),
	}
	var (
		citer *citare.Citer
		err   error
	)
	if *shards > 1 {
		sdb, serr := shard.FromDB(db, *shards)
		if serr != nil {
			log.Fatalf("citesrv: %v", serr)
		}
		citer, err = citare.NewShardedFromProgram(sdb, viewsProgram, opts...)
	} else {
		*shards = 1
		citer, err = citare.NewFromProgram(db, viewsProgram, opts...)
	}
	if err != nil {
		log.Fatalf("citesrv: %v", err)
	}
	if *shards > 1 {
		log.Printf("citesrv: database hash-partitioned across %d shards", *shards)
	}
	s := &server{citer: citare.NewCached(citer), viewsProgram: viewsProgram, shards: *shards}
	mux := http.NewServeMux()
	mux.HandleFunc("/cite", s.handleCite)
	mux.HandleFunc("/views", s.handleViews)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	log.Printf("citesrv: listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
