package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// obsServer is a testServer with the full observability surface wired:
// metrics registry, slow-query ring (threshold 0s short of everything —
// every request is "slow"), request IDs.
func obsServer(t *testing.T) *server {
	t.Helper()
	s := testServer(t)
	s.shards = 1
	s.idPrefix = "test"
	s.slow = newSlowLog(time.Nanosecond, 4)
	s.initObservability()
	return s
}

func TestSlowLogRingEvictionOrder(t *testing.T) {
	l := newSlowLog(time.Millisecond, 3)
	for i := 1; i <= 5; i++ {
		l.add(slowEntry{RequestID: fmt.Sprintf("r%d", i)})
	}
	entries, seen := l.snapshot()
	if seen != 5 {
		t.Fatalf("seen %d, want 5", seen)
	}
	got := make([]string, len(entries))
	for i, e := range entries {
		got[i] = e.RequestID
	}
	// Capacity 3, newest first: r5, r4, r3; r1 and r2 evicted oldest-first.
	if want := "r5,r4,r3"; strings.Join(got, ",") != want {
		t.Fatalf("ring order %v, want %s", got, want)
	}
}

func TestSlowLogDisabled(t *testing.T) {
	if newSlowLog(0, 8) != nil || newSlowLog(time.Second, 0) != nil {
		t.Fatal("zero threshold or capacity should disable the slow log")
	}
	s := testServer(t) // no slow log configured
	w := httptest.NewRecorder()
	s.handleSlow(w, httptest.NewRequest(http.MethodGet, "/v1/slow", nil))
	var resp slowResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Entries) != 0 || resp.Capacity != 0 {
		t.Fatalf("disabled slow log served entries: %+v", resp)
	}
}

// TestRequestIDHeaderAndErrorEnvelope: the middleware mints an ID, echoes
// it in X-Request-ID, and the error envelope carries the same ID.
func TestRequestIDHeaderAndErrorEnvelope(t *testing.T) {
	s := obsServer(t)
	s.quiet = true
	mux := s.mux()

	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(`{}`)))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	id := w.Header().Get("X-Request-ID")
	if id == "" || !strings.HasPrefix(id, "test-") {
		t.Fatalf("X-Request-ID %q", id)
	}
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.RequestID != id {
		t.Fatalf("envelope request_id %q != header %q", env.Error.RequestID, id)
	}

	// IDs are unique per request.
	w2 := httptest.NewRecorder()
	mux.ServeHTTP(w2, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if id2 := w2.Header().Get("X-Request-ID"); id2 == "" || id2 == id {
		t.Fatalf("second request ID %q not distinct from %q", id2, id)
	}
}

// TestMetricsEndpoint drives one cite and checks the Prometheus text
// output covers the cite latency histogram, per-stage histograms, cache,
// plan-cache and HTTP counters.
func TestMetricsEndpoint(t *testing.T) {
	s := obsServer(t)
	s.quiet = true
	mux := s.mux()
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("cite: %d %s", w.Code, w.Body.String())
	}

	mw := httptest.NewRecorder()
	mux.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if mw.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", mw.Code)
	}
	if ct := mw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	text := mw.Body.String()
	for _, want := range []string{
		"# TYPE citare_cite_duration_seconds histogram",
		"citare_cite_duration_seconds_count 1",
		"citare_cites_total 1",
		"citare_tuples_total 3",
		`citare_stage_duration_seconds_count{stage="eval"} 1`,
		`citare_stage_duration_seconds_count{stage="render"} 1`,
		"citare_result_cache_misses_total 1",
		`citare_plan_cache_misses_total{tier="logical"} 1`,
		`citare_plan_cache_misses_total{tier="physical"}`,
		`citesrv_http_requests_total{route="/v1/cite",status="200"} 1`,
		`citesrv_http_request_duration_seconds_count{route="/v1/cite"} 1`,
		"citare_uptime_seconds",
		"citare_engine_shards 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestSlowLogEndToEnd: with a sub-nanosecond threshold every request is
// captured; /v1/slow serves the entry with its ID, query, tuple count and
// pipeline trace.
func TestSlowLogEndToEnd(t *testing.T) {
	s := obsServer(t)
	s.quiet = true
	mux := s.mux()
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("cite: %d %s", w.Code, w.Body.String())
	}
	id := w.Header().Get("X-Request-ID")

	sw := httptest.NewRecorder()
	mux.ServeHTTP(sw, httptest.NewRequest(http.MethodGet, "/v1/slow", nil))
	var resp slowResponse
	if err := json.Unmarshal(sw.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Entries) == 0 {
		t.Fatalf("no slow entries: %s", sw.Body.String())
	}
	var entry *slowEntry
	for i := range resp.Entries {
		if resp.Entries[i].RequestID == id {
			entry = &resp.Entries[i]
			break
		}
	}
	if entry == nil {
		t.Fatalf("cite request %s not captured: %s", id, sw.Body.String())
	}
	if entry.Route != "/v1/cite" || entry.Status != http.StatusOK || entry.Tuples != 3 {
		t.Fatalf("entry %+v", entry)
	}
	if !strings.Contains(entry.Query, "SELECT") {
		t.Fatalf("entry query %q", entry.Query)
	}
	if entry.Trace == nil || entry.Trace.Find("eval") == nil {
		t.Fatalf("entry trace missing eval stage: %+v", entry.Trace)
	}
}

// TestStreamTrailerStageTotals: the NDJSON trailer reports per-stage
// timing totals covering the whole pipeline.
func TestStreamTrailerStageTotals(t *testing.T) {
	s := testServer(t)
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`
	w := httptest.NewRecorder()
	s.handleCiteStream(w, httptest.NewRequest(http.MethodPost, "/v1/cite/stream", strings.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	_, trailer := decodeStream(t, w.Body.String())
	if trailer.StageNs == nil {
		t.Fatal("trailer carries no stage_ns")
	}
	for _, stage := range []string{"parse", "rewrite", "eval", "gather", "render", "cite"} {
		if _, ok := trailer.StageNs[stage]; !ok {
			t.Fatalf("trailer stage_ns missing %q: %v", stage, trailer.StageNs)
		}
	}
	if trailer.StageNs["cite"] <= 0 {
		t.Fatalf("cite total not positive: %v", trailer.StageNs)
	}
}

// TestExplainOverHTTP: the explain wire field returns the stage report and
// never changes the citation payload.
func TestExplainOverHTTP(t *testing.T) {
	s := testServer(t)
	query := `"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"`
	post := func(body string) citeResponse {
		w := httptest.NewRecorder()
		s.handleCite(w, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(body)))
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		var resp citeResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	plain := post(`{` + query + `}`)
	explained := post(`{` + query + `, "explain": true}`)
	if plain.Explain != nil {
		t.Fatal("plain response carries explain")
	}
	if explained.Explain == nil || len(explained.Explain.Stages) == 0 {
		t.Fatal("explained response carries no stages")
	}
	if explained.Explain.Stage("eval") == nil {
		t.Fatalf("explain has no eval stage: %+v", explained.Explain.Stages)
	}
	// Identical citation payload either way.
	explained.Explain = nil
	got, _ := json.Marshal(explained)
	want, _ := json.Marshal(plain)
	if string(got) != string(want) {
		t.Fatalf("explain changed the citation payload:\n got %s\nwant %s", got, want)
	}
}

// TestStatsPlanCountersAndUptime: /stats keeps its old fields and gains
// plan-cache counters and uptime.
func TestStatsPlanCountersAndUptime(t *testing.T) {
	s := obsServer(t)
	s.quiet = true
	mux := s.mux()
	body := `{"datalog": "Q(N) :- Family(F, N, Ty), Ty = \"gpcr\""}`
	for i := 0; i < 2; i++ {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(body)))
		if w.Code != http.StatusOK {
			t.Fatalf("cite %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var resp struct {
		Hits         uint64 `json:"hits"`
		Misses       uint64 `json:"misses"`
		LogicalPlans struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"logical_plans"`
		PhysicalPlans struct {
			Misses uint64 `json:"misses"`
		} `json:"physical_plans"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("unmarshal %s: %v", w.Body.String(), err)
	}
	if resp.Hits != 1 || resp.Misses != 1 {
		t.Fatalf("old fields broken: %+v", resp)
	}
	if resp.LogicalPlans.Misses == 0 {
		t.Fatalf("logical plan misses not reported: %s", w.Body.String())
	}
	if resp.PhysicalPlans.Misses == 0 {
		t.Fatalf("physical plan misses not reported: %s", w.Body.String())
	}
	if resp.UptimeSeconds <= 0 {
		t.Fatalf("uptime %v", resp.UptimeSeconds)
	}
}
