package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"citare"
	"citare/internal/datalog"
)

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		call func() error
	}{
		{"no query", func() error {
			return run(context.Background(), true, "", "", citare.Request{SQL: "", Datalog: "", Format: "json"}, false, false, false, "join", "union", "union", "union", false, false)
		}},
		{"both queries", func() error {
			return run(context.Background(), true, "", "", citare.Request{SQL: "SELECT 1", Datalog: "Q(X) :- R(X)", Format: "json"}, false, false, false, "join", "union", "union", "union", false, false)
		}},
		{"no source", func() error {
			return run(context.Background(), false, "", "", citare.Request{SQL: "", Datalog: "Q(X) :- R(X)", Format: "json"}, false, false, false, "join", "union", "union", "union", false, false)
		}},
		{"bad interp", func() error {
			return run(context.Background(), true, "", "", citare.Request{SQL: "", Datalog: `Q(N) :- Family(F, N, Ty)`, Format: "json"}, false, false, false, "bogus", "union", "union", "union", false, false)
		}},
		{"bad format", func() error {
			return run(context.Background(), true, "", "", citare.Request{SQL: "", Datalog: `Q(N) :- Family(F, N, Ty)`, Format: "yaml"}, false, false, false, "join", "union", "union", "union", false, false)
		}},
		{"bad query", func() error {
			return run(context.Background(), true, "", "", citare.Request{SQL: "", Datalog: `Q(N) :-`, Format: "json"}, false, false, false, "join", "union", "union", "union", false, false)
		}},
	}
	for _, tc := range cases {
		if err := tc.call(); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

func TestRunDemoHappyPath(t *testing.T) {
	// Capture stdout to keep test output clean and assert on the citation.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), true, "", "",
		citare.Request{Datalog: `Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`, Format: "json-compact"},
		true, true, true, "join", "union", "union", "union", false, true)
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<16)
	n, _ := r.Read(out)
	if runErr != nil {
		t.Fatal(runErr)
	}
	got := string(out[:n])
	for _, want := range []string{"rewriting", "Calcitonin", "IUPHAR"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestInferSchema(t *testing.T) {
	prog, err := datalog.ParseProgram(`
view V(X, Y) :- R(X, Y).
cite V C(X) :- R(X, Y), S(Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := inferSchema(prog)
	if err != nil {
		t.Fatal(err)
	}
	if schema.Relation("R") == nil || schema.Relation("S") == nil {
		t.Fatalf("schema incomplete: %s", schema)
	}
	if schema.Relation("R").Arity() != 2 || schema.Relation("S").Arity() != 1 {
		t.Fatal("arities wrong")
	}
	// Conflicting arity must error.
	bad, err := datalog.ParseProgram(`
view V(X) :- R(X).
cite V C(X) :- R(X, Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inferSchema(bad); err == nil {
		t.Fatal("conflicting arities accepted")
	}
}

func TestRunWithCSVData(t *testing.T) {
	dir := t.TempDir()
	views := `
view λF. V(F, N) :- Fam(F, N).
cite V λF. C(F, N) :- Fam(F, N).
fmt  V { "ID": F, "Name": N }.
`
	viewsPath := filepath.Join(dir, "views.cit")
	if err := os.WriteFile(viewsPath, []byte(views), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(dir, "data")
	if err := os.Mkdir(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	csv := "c0,c1\n1,alpha\n2,beta\n"
	if err := os.WriteFile(filepath.Join(dataDir, "Fam.csv"), []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), false, dataDir, viewsPath,
		citare.Request{Datalog: `Q(N) :- Fam(F, N), F = "1"`, Format: "json-compact"},
		false, false, false, "join", "union", "union", "union", false, false)
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<16)
	n, _ := r.Read(out)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !strings.Contains(string(out[:n]), "alpha") {
		t.Fatalf("CSV-backed citation missing: %s", out[:n])
	}
}
