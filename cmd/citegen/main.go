// Command citegen generates citations for queries over a relational
// database with citation views, end to end from the command line.
//
// Usage:
//
//	citegen -demo -sql "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"
//	citegen -demo -query 'Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)' -show-rewritings
//	citegen -data ./csvdir -views views.cit -query '...' -format bibtex
//
// With -data, the directory must contain <Relation>.csv files (with headers)
// for the relations mentioned in the views file; the schema is inferred from
// the views file's base relations unless -demo is given.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"citare"
	"citare/internal/datalog"
	"citare/internal/gtopdb"
	"citare/internal/storage"
)

func main() {
	var (
		demo      = flag.Bool("demo", false, "use the built-in GtoPdb paper instance and views")
		dataDir   = flag.String("data", "", "directory of <Relation>.csv files to load")
		viewsPath = flag.String("views", "", "citation-views program file")
		sqlQuery  = flag.String("sql", "", "SQL query to cite")
		dlQuery   = flag.String("query", "", "datalog query to cite")
		formatAlt = flag.String("format", "json", "citation format: json, json-compact, xml, bibtex, text")
		showRW    = flag.Bool("show-rewritings", false, "print the rewritings used")
		showPoly  = flag.Bool("show-polynomials", false, "print per-tuple citation polynomials")
		showRows  = flag.Bool("show-rows", false, "print the answer tuples")
		timesI    = flag.String("times", "join", "interpretation of · : union or join")
		plusI     = flag.String("plus", "union", "interpretation of + : union or join")
		plusRI    = flag.String("plusR", "union", "interpretation of +R : union or join")
		aggI      = flag.String("agg", "union", "interpretation of Agg : union or join")
		noPrune   = flag.Bool("no-prune", false, "disable order pruning and the §2.3 rewriting preference")
		withDBRef = flag.Bool("cite-database", false, "always include the database-level citation (Agg neutral)")
		timeout   = flag.Duration("timeout", 0, "abort evaluation after this long (0 = no deadline)")
		maxTuples = flag.Int("max-tuples", 0, "fail if the query produces more answer tuples (0 = unbounded)")
		maxRW     = flag.Int("max-rewritings", 0, "bound rewriting enumeration (0 = policy default)")
	)
	flag.Parse()

	// Ctrl-C cancels the evaluation mid-join instead of leaving it running.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	req := citare.Request{
		SQL:           *sqlQuery,
		Datalog:       *dlQuery,
		Format:        *formatAlt,
		MaxTuples:     *maxTuples,
		MaxRewritings: *maxRW,
	}
	if err := run(ctx, *demo, *dataDir, *viewsPath, req,
		*showRW, *showPoly, *showRows, *timesI, *plusI, *plusRI, *aggI, *noPrune, *withDBRef); err != nil {
		fmt.Fprintln(os.Stderr, "citegen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, demo bool, dataDir, viewsPath string, req citare.Request,
	showRW, showPoly, showRows bool, timesI, plusI, plusRI, aggI string, noPrune, withDBRef bool) error {
	if req.SQL == "" && req.Datalog == "" {
		return fmt.Errorf("provide a query with -sql or -query")
	}
	if req.SQL != "" && req.Datalog != "" {
		return fmt.Errorf("-sql and -query are mutually exclusive")
	}

	// Assemble database and views.
	var db *storage.DB
	viewsProgram := ""
	switch {
	case demo:
		db = gtopdb.PaperInstance()
		viewsProgram = gtopdb.ViewsProgram
	case viewsPath != "":
		raw, err := os.ReadFile(viewsPath)
		if err != nil {
			return err
		}
		viewsProgram = string(raw)
		prog, err := datalog.ParseProgram(viewsProgram)
		if err != nil {
			return err
		}
		schema, err := inferSchema(prog)
		if err != nil {
			return err
		}
		db = storage.NewDB(schema)
	default:
		return fmt.Errorf("provide -demo or -views")
	}
	if dataDir != "" {
		n, err := storage.LoadDir(db, dataDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded %d tuples from %s\n", n, dataDir)
	}

	pol, err := buildPolicy(timesI, plusI, plusRI, aggI, noPrune)
	if err != nil {
		return err
	}
	opts := []citare.Option{citare.WithPolicy(pol)}
	if withDBRef {
		opts = append(opts, citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
	}
	citer, err := citare.NewFromProgram(db, viewsProgram, opts...)
	if err != nil {
		return err
	}

	res, err := citer.Cite(ctx, req)
	if err != nil {
		return err
	}

	if showRows {
		fmt.Printf("-- %d answer tuple(s), columns %v\n", res.NumTuples(), res.Columns())
		for _, row := range res.Rows() {
			fmt.Printf("   %v\n", row)
		}
	}
	if showRW {
		fmt.Printf("-- %d rewriting(s)\n", len(res.Rewritings()))
		for _, r := range res.Rewritings() {
			fmt.Println("   " + r)
		}
	}
	if showPoly {
		fmt.Println("-- per-tuple citation polynomials")
		for i, row := range res.Rows() {
			poly, err := res.TuplePolynomialAt(i)
			if err != nil {
				return err
			}
			fmt.Printf("   %v: %s\n", row, poly)
		}
	}
	out, err := res.Rendered()
	if err != nil {
		return err
	}
	fmt.Println(out)
	return nil
}

func buildPolicy(timesI, plusI, plusRI, aggI string, noPrune bool) (citare.Policy, error) {
	pol := citare.Policy{}
	var err error
	if pol.Times, err = parseInterp(timesI); err != nil {
		return pol, err
	}
	if pol.Plus, err = parseInterp(plusI); err != nil {
		return pol, err
	}
	if pol.PlusR, err = parseInterp(plusRI); err != nil {
		return pol, err
	}
	if pol.Agg, err = parseInterp(aggI); err != nil {
		return pol, err
	}
	base := defaultPolicy()
	pol.IdempotentPlus = base.IdempotentPlus
	pol.IncludeBaseTokens = base.IncludeBaseTokens
	pol.AllowPartial = base.AllowPartial
	if !noPrune {
		pol.Orders = base.Orders
		pol.PreferredRewritings = base.PreferredRewritings
	}
	return pol, nil
}

// Indirections below keep the main package free of internal imports beyond
// what the facade re-exports.

func parseInterp(s string) (citare.Interp, error) {
	switch s {
	case "union":
		return citare.Union, nil
	case "join", "merge":
		return citare.Join, nil
	}
	return 0, fmt.Errorf("unknown interpretation %q (want union or join)", s)
}

func defaultPolicy() citare.Policy {
	// Mirror core.DefaultPolicy via the facade's types.
	return citare.Policy{
		Times: citare.Join, Plus: citare.Union, PlusR: citare.Union, Agg: citare.Union,
		IdempotentPlus: true, IncludeBaseTokens: true, AllowPartial: true,
		PreferredRewritings: true,
	}
}

// inferSchema derives a relational schema from the base relations mentioned
// in a views program (all-string columns named c0..ck).
func inferSchema(prog *datalog.Program) (*storage.Schema, error) {
	s := storage.NewSchema()
	arity := make(map[string]int)
	record := func(pred string, n int) error {
		if prev, ok := arity[pred]; ok {
			if prev != n {
				return fmt.Errorf("relation %s used with arities %d and %d", pred, prev, n)
			}
			return nil
		}
		arity[pred] = n
		cols := make([]storage.Column, n)
		for i := range cols {
			cols[i] = storage.Column{Name: fmt.Sprintf("c%d", i)}
		}
		return s.AddRelation(&storage.RelSchema{Name: pred, Cols: cols})
	}
	for _, d := range prog.Views {
		for _, a := range d.View.Atoms {
			if err := record(a.Pred, len(a.Args)); err != nil {
				return nil, err
			}
		}
		for _, a := range d.Cite.Atoms {
			if err := record(a.Pred, len(a.Args)); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
