package citare

// Allocation-regression guard for the materialized Cite path (ISSUE 9
// satellite 4). The gather stage now shares one pre-sized TupleCitation
// buffer between the output evaluation, the rewriting gather and the final
// Result — no per-tuple heap skeletons, no copying append — and gathers
// rewriting polynomials through the same slot-frame path the streamed
// pipeline uses. These tests pin that behavior two ways: byte-parity of the
// buffer-sharing path against the streamed gather on the citegraph
// workload, and hard allocs/op ceilings that would catch the old
// per-tuple-pointer + copy regime coming back (it costs 2 extra allocations
// per tuple plus a map-sized gather detour).

import (
	"context"
	"testing"

	"citare/internal/citegraph"
)

// TestMaterializedCiteAllocs asserts allocs/op ceilings for warm materialized
// Cite calls on the citegraph workload. Measured after the buffer-sharing
// change: ~250 allocs for a single-row resolution, ~115/row amortized on a
// 210-row hot-key probe; the ceilings carry ~50% headroom. Revisit the
// constants deliberately if a feature legitimately needs more — they are the
// regression gate the ISSUE asks for.
func TestMaterializedCiteAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	db := citegraph.Generate(citegraph.ScaleSmall())
	c := citegraphCiter(t, db)
	cases := []struct {
		name    string
		datalog string
		ceiling float64 // absolute allocs/op
		perRow  float64 // alternatively, allocs per result row
	}{
		{"resolution-1row", citegraph.ResolutionQuery(citegraph.HotWork()), 400, 0},
		{"hotkey-incoming", citegraph.IncomingQuery(citegraph.HotWork()), 0, 175},
		{"venue-rollup", citegraph.VenueRollupQuery(citegraph.VenueID(1)), 0, 175},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := Request{Datalog: tc.datalog}
			res, err := c.Cite(context.Background(), req) // warm plan + view caches
			if err != nil {
				t.Fatal(err)
			}
			rows := len(res.Rows())
			if rows == 0 {
				t.Fatalf("workload query %s returned no rows", tc.datalog)
			}
			got := testing.AllocsPerRun(10, func() {
				if _, err := c.Cite(context.Background(), req); err != nil {
					t.Fatal(err)
				}
			})
			ceiling := tc.ceiling
			if ceiling == 0 {
				ceiling = tc.perRow * float64(rows)
			}
			if got > ceiling {
				t.Fatalf("materialized Cite: %.0f allocs/op over %d rows, ceiling %.0f — the shared gather buffer regressed", got, rows, ceiling)
			}
		})
	}
}

// TestMaterializedGatherSharesBuffer is the byte-parity half of the guard:
// the materialized path (shared buffer, frame gather) must stay identical to
// the streamed path on deep joins where the gather actually merges multiple
// rewritings per tuple.
func TestMaterializedGatherSharesBuffer(t *testing.T) {
	db := citegraph.Generate(citegraph.ScaleSmall())
	c := citegraphCiter(t, db)
	for _, q := range citegraphWorkload() {
		assertStreamMatchesCite(t, c, Request{Datalog: q.src})
	}
}
