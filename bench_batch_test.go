package citare

// B17 — batch throughput: k concurrent equivalent (and mixed) requests
// through CiteBatch vs. the same requests as independent Cite calls. The
// batch groups equivalent queries, so k copies of one query cost one
// citation evaluation; the independent loop pays k evaluations (the
// logical plan is still cached after the first).

import (
	"context"
	"fmt"
	"testing"

	"citare/internal/gtopdb"
)

// benchBatchCiter builds the shared benchmark citer over the generated
// gtopdb instance and warms view materialization.
func benchBatchCiter(b *testing.B) *Citer {
	b.Helper()
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 500
	citer, err := NewFromProgram(gtopdb.Generate(cfg), gtopdb.ViewsProgram)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := citer.Cite(context.Background(), Request{Datalog: benchJoinQuery}); err != nil {
		b.Fatal(err)
	}
	return citer
}

const benchJoinQuery = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`

// benchMixedQueries are the distinct queries of the mixed batch.
var benchMixedQueries = []string{
	benchJoinQuery,
	`Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), F = "250"`,
	`Q(N) :- Family(F, N, Ty), Ty = "type-02"`,
	`Q(N, Pn) :- Family(F, N, Ty), FC(F, P), Person(P, Pn, A), F = "100"`,
}

// equivalentBatch is k copies of the join query (half as a syntactic
// variant, so grouping must see through the surface form).
func equivalentBatch(k int) []Request {
	reqs := make([]Request, k)
	for i := range reqs {
		q := benchJoinQuery
		if i%2 == 1 {
			q = `Q(Name, Text) :- FamilyIntro(Fid, Text), Family(Fid, Name, Kind), Kind = "type-01"`
		}
		reqs[i] = Request{Datalog: q}
	}
	return reqs
}

// mixedBatch cycles k requests over the distinct queries.
func mixedBatch(k int) []Request {
	reqs := make([]Request, k)
	for i := range reqs {
		reqs[i] = Request{Datalog: benchMixedQueries[i%len(benchMixedQueries)]}
	}
	return reqs
}

// BenchmarkCiteBatch measures one batch of k requests per op — equivalent
// and mixed — against the same requests issued as independent Cite calls.
func BenchmarkCiteBatch(b *testing.B) {
	const k = 16
	for _, bc := range []struct {
		name string
		reqs []Request
	}{
		{"equivalent", equivalentBatch(k)},
		{"mixed", mixedBatch(k)},
	} {
		b.Run(fmt.Sprintf("batch/%s-k=%d", bc.name, k), func(b *testing.B) {
			citer := benchBatchCiter(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := citer.CiteBatch(context.Background(), bc.reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("independent/%s-k=%d", bc.name, k), func(b *testing.B) {
			citer := benchBatchCiter(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, req := range bc.reqs {
					if _, err := citer.Cite(context.Background(), req); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
