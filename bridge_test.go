package citare

// Small indirections shared by the integration tests.

import (
	"citare/internal/cq"
	"citare/internal/eval"
	"citare/internal/storage"
)

func equivalentQueries(a, b *cq.Query) bool { return cq.Equivalent(a, b) }

func evalDirect(db *storage.DB, q *cq.Query) (map[string]bool, error) {
	res, err := eval.Eval(db, q)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(res.Tuples))
	for _, t := range res.Tuples {
		out[t.Key()] = true
	}
	return out, nil
}
