package citare

// Cross-module integration tests: fixity end to end (E12), random-workload
// plan independence, and certification of every rewriting the engine uses.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"citare/internal/core"
	"citare/internal/format"
	"citare/internal/gtopdb"
	"citare/internal/storage"
	"citare/internal/workload"
)

// TestFixityEndToEnd reproduces §4's fixity requirement: the same query
// cited against two versions returns the data — and the credit — as of each
// version.
func TestFixityEndToEnd(t *testing.T) {
	v := storage.NewVersionedDB(gtopdb.Schema())
	v.MustInsert("Family", "11", "Calcitonin", "gpcr")
	v.MustInsert("Person", "p1", "Hay", "U. Auckland")
	v.MustInsert("FC", "11", "p1")
	rel1 := v.Commit("release-1")
	v.MustInsert("Person", "p2", "Poyner", "Aston U.")
	v.MustInsert("FC", "11", "p2")
	rel2 := v.Commit("release-2")

	citeAt := func(rel uint64) string {
		db, err := v.AsOf(rel)
		if err != nil {
			t.Fatal(err)
		}
		stamp := format.NewObject().Set("Version", format.S(fmt.Sprint(rel)))
		c, err := NewFromProgram(db, gtopdb.ViewsProgram, WithNeutralCitation(stamp))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), F = "11"`)
		if err != nil {
			t.Fatal(err)
		}
		return res.CitationJSON()
	}

	at1, at2 := citeAt(rel1), citeAt(rel2)
	if !strings.Contains(at1, `"Committee": ["Hay"]`) {
		t.Fatalf("release-1 citation must credit only Hay: %s", at1)
	}
	if !strings.Contains(at2, `"Committee": ["Hay", "Poyner"]`) {
		t.Fatalf("release-2 citation must credit Hay and Poyner: %s", at2)
	}
	if !strings.Contains(at1, `"Version": "1"`) || !strings.Contains(at2, `"Version": "2"`) {
		t.Fatal("citations must carry their version stamps")
	}
	// Re-citing at release-1 after release-2 exists must be unchanged.
	if again := citeAt(rel1); again != at1 {
		t.Fatal("as-of citation changed after later commits (fixity violated)")
	}
}

// TestPlanIndependenceRandomQueries checks the paper's plan-independence
// claim on randomly generated GtoPdb queries: adding a redundant atom and
// renaming variables never changes the citation.
func TestPlanIndependenceRandomQueries(t *testing.T) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 60
	db := gtopdb.Generate(cfg)
	citer, err := NewFromProgram(db, gtopdb.ViewsProgram)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		q := workload.RandomGtoPdbQuery(r, 2)
		variant := q.Clone()
		// Redundant copy of the first atom with fresh variable names for
		// its existential positions keeps equivalence.
		variant.Atoms = append(variant.Atoms, variant.Atoms[0])
		res1, err := citer.Engine().Cite(q)
		if err != nil {
			return false
		}
		res2, err := citer.Engine().Cite(variant)
		if err != nil {
			return false
		}
		if len(res1.Tuples) != len(res2.Tuples) {
			return false
		}
		for i := range res1.Tuples {
			if core.PolyString(res1.Tuples[i].Combined) != core.PolyString(res2.Tuples[i].Combined) {
				return false
			}
		}
		return res1.Citation.JSON() == res2.Citation.JSON()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRewritingsAlwaysCertified re-verifies, through the public
// surface, that every rewriting the engine reports expands to a query
// equivalent to the asked one (the soundness invariant).
func TestEngineRewritingsAlwaysCertified(t *testing.T) {
	citer := newPaperCiter(t)
	queries := []string{
		`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`,
		`Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)`,
		`Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)`,
		`Q(N) :- Family(F, N, Ty), F = "11"`,
	}
	for _, qs := range queries {
		res, err := citer.CiteDatalog(qs)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		for _, r := range res.Result().Rewritings {
			exp, err := r.Expand()
			if err != nil {
				t.Fatalf("%s: expand %s: %v", qs, r, err)
			}
			if !equivalentQueries(exp, res.Result().Query) {
				t.Fatalf("%s: rewriting %s not equivalent", qs, r)
			}
		}
	}
}

// TestCitationAgreesWithDirectEvaluation: the tuples the citation reports
// must be exactly the query's answers over the database.
func TestCitationAgreesWithDirectEvaluation(t *testing.T) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 80
	db := gtopdb.Generate(cfg)
	citer, err := NewFromProgram(db, gtopdb.ViewsProgram)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 25; i++ {
		q := workload.RandomGtoPdbQuery(r, 3)
		res, err := citer.Engine().Cite(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		direct, err := evalDirect(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != len(direct) {
			t.Fatalf("%s: %d cited tuples vs %d answers", q, len(res.Tuples), len(direct))
		}
		for _, tc := range res.Tuples {
			if !direct[tc.Tuple.Key()] {
				t.Fatalf("%s: cited tuple %v is not an answer", q, tc.Tuple)
			}
		}
	}
}

// TestEveryAnswerTupleGetsACitation: with the paper's five views over the
// GtoPdb schema and partial rewritings admitted, no tuple is left uncited.
func TestEveryAnswerTupleGetsACitation(t *testing.T) {
	citer := newPaperCiter(t)
	res, err := citer.CiteDatalog(`Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTuples() == 0 {
		t.Fatal("query should have answers")
	}
	for i := 0; i < res.NumTuples(); i++ {
		if res.TuplePolynomial(i) == "0" || res.TuplePolynomial(i) == "" {
			t.Fatalf("tuple %v has no citation", res.Rows()[i])
		}
	}
}
