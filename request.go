package citare

import (
	"context"
	"fmt"

	"citare/internal/core"
	"citare/internal/cq"
	"citare/internal/datalog"
	"citare/internal/format"
	"citare/internal/obs"
	"citare/internal/sqlfe"
	"citare/internal/storage"
)

// Request is one citation request: the query source plus per-request
// options. Exactly one of SQL or Datalog must be set. The zero value of
// every option field means "use the Citer's configuration".
type Request struct {
	// SQL is a conjunctive SQL query over the database schema.
	SQL string
	// Datalog is a query in the paper's notation, e.g.
	//
	//	Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)
	Datalog string

	// Format names the render format the response should use: json,
	// json-compact, xml, bibtex or text. It is validated up front (an
	// unknown name fails with ErrParse before any evaluation) and becomes
	// the Citation's default for Rendered; it does not affect the citation
	// itself. Empty means json.
	Format string

	// Parallel overrides the Citer's binding-enumeration workers for this
	// request: 1 forces sequential evaluation, n > 1 caps the worker pool,
	// and 0 keeps the Citer's setting (adaptive by default).
	Parallel int

	// MaxRewritings tightens rewriting enumeration for this request; 0
	// keeps the policy's bound, and a non-zero policy bound can only be
	// lowered, never raised. Tighter bounds trade citation completeness
	// for latency on view-heavy deployments.
	MaxRewritings int

	// MaxTuples bounds the number of answer tuples the query may produce.
	// A query exceeding the bound aborts promptly with ErrLimit instead of
	// enumerating (and citing) a result nobody can page through. 0 means
	// unbounded.
	MaxTuples int

	// Explain asks for a per-stage trace of the request's trip through the
	// pipeline (parse, rewrite, compile, view materialization, eval,
	// gather, render — with durations, counts, cache outcomes, the
	// strategy chosen and per-shard timings), returned via
	// Citation.Explain. Tracing never changes the citation itself; through
	// a CachedCiter an Explain request bypasses the citation cache.
	Explain bool

	// MinShardCoverage sets the degradation policy on a resilient sharded
	// Citer (WithResilience). 0 — the default — requires full shard
	// coverage: a shard still unreachable after its attempt budget fails
	// the request with ErrShardUnavailable. A value k > 0 accepts a partial
	// citation as long as at least k shards contributed (answered or
	// provably pruned): Cite then returns the degraded Citation together
	// with a *PartialError carrying the Coverage report. Ignored without
	// resilience.
	MinShardCoverage int

	// ShardAttempts overrides the resilient driver's per-shard attempt
	// budget (first try included) for this request; 0 keeps the configured
	// budget. Ignored without resilience.
	ShardAttempts int
}

// parse validates the request shape and translates the query text into the
// internal query form. All failures are tagged ErrParse.
func (r Request) parse(schema *storage.Schema) (*cq.Query, error) {
	if (r.SQL == "") == (r.Datalog == "") {
		return nil, fmt.Errorf("%w: provide exactly one of SQL or Datalog", ErrParse)
	}
	if r.Format != "" {
		if _, err := format.RendererByName(r.Format); err != nil {
			return nil, parseError(err)
		}
	}
	var (
		q   *cq.Query
		err error
	)
	if r.SQL != "" {
		q, err = sqlfe.Parse(schema, r.SQL)
	} else {
		q, err = datalog.ParseQuery(r.Datalog)
	}
	if err != nil {
		return nil, parseError(err)
	}
	if err := q.Validate(); err != nil {
		return nil, parseError(err)
	}
	return q, nil
}

// renderFormat is the request's effective render format.
func (r Request) renderFormat() string {
	if r.Format == "" {
		return "json"
	}
	return r.Format
}

// citeOptions translates the request's knobs to the engine's options.
func (r Request) citeOptions() core.CiteOptions {
	return core.CiteOptions{
		Parallel:         r.Parallel,
		MaxRewritings:    r.MaxRewritings,
		MaxTuples:        r.MaxTuples,
		MinShardCoverage: r.MinShardCoverage,
		ShardAttempts:    r.ShardAttempts,
	}
}

// Cite evaluates one request: the query is parsed, rewritten over the
// citation views, evaluated against the engine's snapshot, and its citation
// assembled. The context governs the whole pipeline — a canceled or expired
// ctx aborts evaluation at the next partition or frame boundary and returns
// an error tagged ErrCanceled. All errors are tagged with the package's
// taxonomy (ErrParse, ErrSchema, ErrCanceled, ErrLimit).
func (c *Citer) Cite(ctx context.Context, req Request) (*Citation, error) {
	// Explain: ensure a trace rides the context (reusing one the caller —
	// e.g. citesrv's slow-query logger — already injected), bracket the
	// parse in its own span, and attach the rendered report to the result.
	var tr *obs.Trace
	if req.Explain {
		if tr, _ = obs.FromContext(ctx); tr == nil {
			tr = obs.NewTrace()
			ctx = obs.NewContext(ctx, tr, obs.NoSpan)
		}
	}
	psp := obs.NoSpan
	if tr != nil {
		_, cur := obs.FromContext(ctx)
		psp = tr.Start(cur, obs.StageParse)
	}
	q, err := req.parse(c.schema)
	tr.End(psp)
	if err != nil {
		return nil, err
	}
	res, err := c.engine.CiteCtx(ctx, q, req.citeOptions())
	if err != nil {
		return nil, classify(err)
	}
	ct := &Citation{res: res, format: req.renderFormat()}
	if tr != nil {
		ct.explain = explainFromReport(tr.Report())
	}
	// A degraded citation is returned, not swallowed: the Citation is valid
	// for the shards that answered, and the paired *PartialError carries the
	// machine-readable Coverage so callers can decide whether it is enough.
	if res.Coverage != nil && res.Coverage.Partial() {
		return ct, &PartialError{Coverage: res.Coverage}
	}
	return ct, nil
}

// Tuple is one answer tuple streamed by CiteEach, carrying its citation in
// both the paper's polynomial notation and rendered JSON.
type Tuple struct {
	// Index is the tuple's position in the deterministic result order.
	Index int
	// Values are the tuple's column values (aligned with the query head).
	Values []string
	// Polynomial is the tuple's citation polynomial, e.g.
	// CV1("13")·CV2("13") + CV4("gpcr")·CV2("13").
	Polynomial string
	// CitationJSON is the tuple's rendered citation record as compact JSON.
	CitationJSON string
}

// CiteEach evaluates one request and streams each answer tuple's citation
// through fn in the deterministic result order, without materializing the
// full per-tuple citation list or the aggregated result-set citation — the
// way to page a very large result. fn returning an error aborts the stream
// with that error; context cancellation aborts with ErrCanceled.
func (c *Citer) CiteEach(ctx context.Context, req Request, fn func(Tuple) error) error {
	if fn == nil {
		return fmt.Errorf("%w: CiteEach requires a callback", ErrParse)
	}
	// When a trace rides the context (citesrv's stream trailer), bracket
	// the parse so per-stage totals cover the whole pipeline; Start no-ops
	// on a nil trace.
	tr, cur := obs.FromContext(ctx)
	psp := tr.Start(cur, obs.StageParse)
	q, err := req.parse(c.schema)
	tr.End(psp)
	if err != nil {
		return err
	}
	i := 0
	res, err := c.engine.CiteEach(ctx, q, req.citeOptions(), func(tc *core.TupleCitation) error {
		t := Tuple{
			Index:        i,
			Values:       append([]string(nil), tc.Tuple...),
			Polynomial:   core.PolyString(tc.Combined),
			CitationJSON: tc.Rendered.JSON(),
		}
		i++
		return fn(t)
	})
	if err != nil {
		return classify(err)
	}
	// Degraded stream: every delivered tuple is valid, but skipped shards
	// may have withheld others. Reported after the last delivery as a
	// *PartialError so streaming callers (citesrv's NDJSON trailer) can
	// attach the Coverage without a second channel.
	if res != nil && res.Coverage != nil && res.Coverage.Partial() {
		return &PartialError{Coverage: res.Coverage}
	}
	return nil
}
