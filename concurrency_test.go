package citare

// Race and stress tests for the concurrent citation engine: many goroutines
// issuing Engine.Cite through both front-ends against one shared engine
// while views materialize lazily, plus Reset racing in-flight citations.
// Run with -race (CI does).

import (
	"fmt"
	"sync"
	"testing"

	"citare/internal/gtopdb"
)

// mixedQueries pairs each query with the front-end that issues it. All are
// answerable over the paper instance.
type mixedQuery struct {
	sql bool
	src string
}

func mixedWorkload() []mixedQuery {
	return []mixedQuery{
		{false, `Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`},
		{false, `Q(N) :- Family(F, N, Ty), Ty = "lgic"`},
		{false, `Q(N, Pn) :- Family(F, N, Ty), FC(F, P), Person(P, Pn, A)`},
		{true, `SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'`},
		{true, `SELECT f.FName FROM Family f WHERE f.Type = 'lgic'`},
		{true, `SELECT p.PName FROM FC c, Person p, Family f WHERE c.PID = p.PID AND c.FID = f.FID`},
	}
}

func cite(c *Citer, q mixedQuery) (*Citation, error) {
	if q.sql {
		return c.CiteSQL(q.src)
	}
	return c.CiteDatalog(q.src)
}

// TestConcurrentCiteMixedFrontends issues N goroutines of mixed SQL and
// datalog citations against a single fresh engine (so lazy view
// materialization happens under contention) and checks every result against
// a sequentially computed baseline.
func TestConcurrentCiteMixedFrontends(t *testing.T) {
	queries := mixedWorkload()

	// Sequential baseline from an independent engine.
	baseline := make([]string, len(queries))
	seq := newPaperCiter(t)
	for i, q := range queries {
		res, err := cite(seq, q)
		if err != nil {
			t.Fatalf("%s: %v", q.src, err)
		}
		baseline[i] = res.CitationJSON()
	}

	for _, parallel := range []int{0, 4} {
		t.Run(fmt.Sprintf("parallel=%d", parallel), func(t *testing.T) {
			shared := newPaperCiter(t, WithParallelEval(parallel))
			const goroutines = 24
			const rounds = 8
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						i := (g + r) % len(queries)
						res, err := cite(shared, queries[i])
						if err != nil {
							t.Errorf("goroutine %d, %s: %v", g, queries[i].src, err)
							return
						}
						if got := res.CitationJSON(); got != baseline[i] {
							t.Errorf("goroutine %d, %s: citation diverged from sequential baseline", g, queries[i].src)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestConcurrentCiteWithReset races Cite calls against Reset plus live
// database writes. Every call must succeed and return either the old or the
// new answer set, never a torn mixture (tuple counts are checked against
// the two legal values).
func TestConcurrentCiteWithReset(t *testing.T) {
	db := gtopdb.PaperInstance()
	c, err := NewFromProgram(db, gtopdb.ViewsProgram)
	if err != nil {
		t.Fatal(err)
	}
	const query = `Q(N) :- Family(F, N, Ty), Ty = "gpcr"`
	before, err := c.CiteDatalog(query)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{before.NumTuples(): true, before.NumTuples() + 3: true}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := c.CiteDatalog(query)
				if err != nil {
					t.Errorf("cite during reset: %v", err)
					return
				}
				if n := res.NumTuples(); n != before.NumTuples() && n < before.NumTuples() {
					t.Errorf("torn result: %d tuples", n)
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		db.MustInsert("Family", fmt.Sprintf("9%d", i), fmt.Sprintf("Fresh%d", i), "gpcr")
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	after, err := c.CiteDatalog(query)
	if err != nil {
		t.Fatal(err)
	}
	if !want[after.NumTuples()] {
		t.Fatalf("after reset: %d tuples, want %d", after.NumTuples(), before.NumTuples()+3)
	}
}

// TestConcurrentCachedCiterStress hammers the cached citer with a rotating
// query mix across both front-ends; accounting must balance and answers
// must match the uncached engine.
func TestConcurrentCachedCiterStress(t *testing.T) {
	queries := mixedWorkload()
	seq := newPaperCiter(t)
	baseline := make([]string, len(queries))
	for i, q := range queries {
		res, err := cite(seq, q)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = res.CitationJSON()
	}

	cc := NewCached(newPaperCiter(t))
	const goroutines = 16
	const rounds = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g*3 + r) % len(queries)
				q := queries[i]
				var (
					res *Citation
					err error
				)
				if q.sql {
					res, err = cc.CiteSQL(q.src)
				} else {
					res, err = cc.CiteDatalog(q.src)
				}
				if err != nil {
					t.Errorf("%s: %v", q.src, err)
					return
				}
				if res.CitationJSON() != baseline[i] {
					t.Errorf("%s: cached citation diverged", q.src)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := cc.Stats()
	if hits+misses != goroutines*rounds {
		t.Fatalf("accounting: %d hits + %d misses != %d", hits, misses, goroutines*rounds)
	}
	// The SQL and datalog variants of the gpcr query share one entry, so
	// distinct entries number at most len(queries)-1.
	if misses < 2 || misses > len(queries)-1 {
		t.Fatalf("misses %d outside [2,%d]", misses, len(queries)-1)
	}
}
