package citare

// Property tests for the sharded engine: citations produced through
// shard-partitioned storage with scatter-gather evaluation must be
// byte-identical to the unsharded engine's, on the paper's gtopdb workload
// and the advisor example workload, for every shard count.

import (
	"fmt"
	"sync"
	"testing"

	"citare/internal/citegraph"
	"citare/internal/gtopdb"
	"citare/internal/shard"
	"citare/internal/storage"
)

// gtopdbWorkload is the mixed SQL/datalog query set of the concurrency
// tests plus point lookups that exercise shard pruning.
func gtopdbWorkload() []mixedQuery {
	return append(mixedWorkload(),
		mixedQuery{false, `Q(N) :- Family(F, N, Ty), F = "11"`},
		mixedQuery{false, `Q(Tx) :- FamilyIntro(F, Tx), F = "13"`},
		mixedQuery{true, `SELECT f.FName, i.Text FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.FID = '11'`},
	)
}

// advisorWorkload replays the examples/advisor log shapes: family landing
// pages and type pages — the workloads behind the paper's V1 and V5.
func advisorWorkload() []mixedQuery {
	var out []mixedQuery
	for _, fid := range []string{"11", "13", "20"} {
		out = append(out, mixedQuery{false, fmt.Sprintf(`Q(N, Ty) :- Family(%q, N, Ty)`, fid)})
	}
	for _, ty := range []string{"gpcr", "lgic", "nhr"} {
		out = append(out, mixedQuery{false, fmt.Sprintf(`Q(N, Tx) :- Family(F, N, %q), FamilyIntro(F, Tx)`, ty)})
	}
	return out
}

// citationFingerprint renders everything observable about a citation:
// columns, rows, rewritings, per-tuple polynomials and records, and the
// aggregated citation.
func citationFingerprint(t *testing.T, res *Citation) string {
	t.Helper()
	s := fmt.Sprintf("cols=%v rows=%v rewritings=%v|", res.Columns(), res.Rows(), res.Rewritings())
	for i := 0; i < res.NumTuples(); i++ {
		s += res.TuplePolynomial(i) + "§" + res.TupleCitationJSON(i) + ";"
	}
	return s + res.CitationJSON()
}

func shardedPaperCiter(t *testing.T, db *storage.DB, shards int, opts ...Option) *Citer {
	t.Helper()
	sdb, err := shard.FromDB(db, shards)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewShardedFromProgram(sdb, gtopdb.ViewsProgram,
		append([]Option{WithNeutralCitation(gtopdb.DatabaseCitation())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// citegraphWorkload exercises the citegraph policy library: hot-key probes
// on the Zipf head, long-tail resolution, and the deep joins (co-citation,
// two-hop chains, author-transitive provenance, venue roll-ups).
func citegraphWorkload() []mixedQuery {
	cfg := citegraph.ScaleSmall()
	hot, tail := citegraph.HotWork(), citegraph.WorkID(cfg.Works-1)
	return []mixedQuery{
		{false, citegraph.ResolutionQuery(hot)},
		{false, citegraph.ResolutionQuery(tail)},
		{false, citegraph.IncomingQuery(hot)},
		{false, citegraph.CoCitationQuery(hot)},
		{false, citegraph.ChainQuery(tail)},
		{false, citegraph.AuthorProvenanceQuery(citegraph.AuthorID(3))},
		{false, citegraph.VenueRollupQuery(citegraph.VenueID(1))},
	}
}

// citegraphCiter builds the unsharded baseline over a small citegraph
// instance with the full policy library.
func citegraphCiter(t *testing.T, db *storage.DB, opts ...Option) *Citer {
	t.Helper()
	c, err := NewFromProgram(db, citegraph.ViewsProgram,
		append([]Option{WithNeutralCitation(citegraph.DatasetCitation())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// shardedCitegraphCiter partitions the same instance and builds the sharded
// engine with identical options.
func shardedCitegraphCiter(t *testing.T, db *storage.DB, shards int, opts ...Option) *Citer {
	t.Helper()
	sdb, err := shard.FromDB(db, shards)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewShardedFromProgram(sdb, citegraph.ViewsProgram,
		append([]Option{WithNeutralCitation(citegraph.DatasetCitation())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCitegraphShardedParity: the citegraph workload — hot-key skew and deep
// joins included — produces byte-identical citations through the sharded
// engine for the ISSUE 9 shard counts, under both Cited and Citing routing
// of the Cites relation.
func TestCitegraphShardedParity(t *testing.T) {
	for _, routing := range []string{"Cited", "Citing"} {
		cfg := citegraph.ScaleSmall()
		cfg.CitesShardKey = routing
		db := citegraph.Generate(cfg)
		base := citegraphCiter(t, db)
		for _, shards := range []int{1, 3, 5} {
			c := shardedCitegraphCiter(t, db, shards)
			for _, q := range citegraphWorkload() {
				want, err := cite(base, q)
				if err != nil {
					t.Fatalf("unsharded %s: %v", q.src, err)
				}
				got, err := cite(c, q)
				if err != nil {
					t.Fatalf("routing=%s shards=%d %s: %v", routing, shards, q.src, err)
				}
				if g, w := citationFingerprint(t, got), citationFingerprint(t, want); g != w {
					t.Fatalf("routing=%s shards=%d %s:\n got %s\nwant %s", routing, shards, q.src, g, w)
				}
			}
		}
	}
}

// TestShardedEngineParity: for every query of the gtopdb and advisor
// workloads, the sharded engine's full citation output is byte-identical to
// the unsharded engine's, across shard counts.
func TestShardedEngineParity(t *testing.T) {
	db := gtopdb.PaperInstance()
	base, err := NewFromProgram(db, gtopdb.ViewsProgram, WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	workloads := []struct {
		name    string
		queries []mixedQuery
	}{
		{"gtopdb", gtopdbWorkload()},
		{"advisor", advisorWorkload()},
	}
	for _, shards := range []int{1, 2, 3, 5} {
		c := shardedPaperCiter(t, db, shards)
		for _, wl := range workloads {
			for _, q := range wl.queries {
				want, err := cite(base, q)
				if err != nil {
					t.Fatalf("unsharded %s: %v", q.src, err)
				}
				got, err := cite(c, q)
				if err != nil {
					t.Fatalf("shards=%d %s: %v", shards, q.src, err)
				}
				if g, w := citationFingerprint(t, got), citationFingerprint(t, want); g != w {
					t.Fatalf("%s workload, shards=%d, %s:\n got %s\nwant %s", wl.name, shards, q.src, g, w)
				}
			}
		}
	}
}

// TestShardedEngineParityGenerated repeats the parity check on a larger
// generated instance where shard pruning and fan-out actually distribute
// work (the paper instance is tiny).
func TestShardedEngineParityGenerated(t *testing.T) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 150
	db := gtopdb.Generate(cfg)
	base, err := NewFromProgram(db, gtopdb.ViewsProgram)
	if err != nil {
		t.Fatal(err)
	}
	queries := []mixedQuery{
		{false, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`},
		{false, `Q(N) :- Family(F, N, Ty), F = "37"`},
		{false, `Q(N, Pn) :- Family(F, N, Ty), FC(F, P), Person(P, Pn, A), Ty = "type-02"`},
	}
	sdb, err := shard.FromDB(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewShardedFromProgram(sdb, gtopdb.ViewsProgram)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, err := cite(base, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cite(c, q)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := citationFingerprint(t, got), citationFingerprint(t, want); g != w {
			t.Fatalf("%s:\n got %s\nwant %s", q.src, g, w)
		}
	}
}

// TestShardedReset: writes to the live sharded database become visible
// exactly at Reset, like the unsharded engine.
func TestShardedReset(t *testing.T) {
	db := gtopdb.PaperInstance()
	sdb, err := shard.FromDB(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewShardedFromProgram(sdb, gtopdb.ViewsProgram)
	if err != nil {
		t.Fatal(err)
	}
	const q = `Q(N) :- Family(F, N, Ty), Ty = "gpcr"`
	before, err := c.CiteDatalog(q)
	if err != nil {
		t.Fatal(err)
	}
	sdb.MustInsert("Family", "777", "Shardin", "gpcr")
	mid, err := c.CiteDatalog(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Rows()) != len(before.Rows()) {
		t.Fatalf("write visible before Reset: %d rows, want %d", len(mid.Rows()), len(before.Rows()))
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	after, err := c.CiteDatalog(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows()) != len(before.Rows())+1 {
		t.Fatalf("after Reset: %d rows, want %d", len(after.Rows()), len(before.Rows())+1)
	}
}

// TestShardedConcurrentCiteAndReset stresses the sharded engine under
// concurrent mixed-frontend citations racing Resets and live shard writes.
// Run with -race (CI does).
func TestShardedConcurrentCiteAndReset(t *testing.T) {
	db := gtopdb.PaperInstance()
	sdb, err := shard.FromDB(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewShardedFromProgram(sdb, gtopdb.ViewsProgram,
		WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	queries := gtopdbWorkload()
	const goroutines = 16
	const rounds = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if g == 0 && r%2 == 1 {
					sdb.MustInsert("Family", fmt.Sprintf("x%d_%d", g, r), "Stress", "gpcr")
					if err := c.Reset(); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				q := queries[(g+r)%len(queries)]
				if _, err := cite(c, q); err != nil {
					t.Errorf("%s: %v", q.src, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardedCachedCiter drives the cached facade over a sharded engine and
// checks hits accumulate and invalidation picks up shard writes.
func TestShardedCachedCiter(t *testing.T) {
	db := gtopdb.PaperInstance()
	sdb, err := shard.FromDB(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewShardedFromProgram(sdb, gtopdb.ViewsProgram)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCached(base)
	const q = `Q(N) :- Family(F, N, Ty), Ty = "gpcr"`
	first, err := c.CiteDatalog(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CiteDatalog(q); err != nil {
		t.Fatal(err)
	}
	if hits, _ := c.Stats(); hits == 0 {
		t.Fatal("no cache hits on repeated sharded citation")
	}
	sdb.MustInsert("Family", "888", "CacheFam", "gpcr")
	if err := c.Invalidate(); err != nil {
		t.Fatal(err)
	}
	refreshed, err := c.CiteDatalog(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(refreshed.Rows()) != len(first.Rows())+1 {
		t.Fatalf("invalidate did not surface shard write: %d rows, want %d",
			len(refreshed.Rows()), len(first.Rows())+1)
	}
}
