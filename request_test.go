package citare

// Tests for the context-first request API: the typed error taxonomy,
// per-request options, the explicit-error tuple accessors, and parity of
// the deprecated wrappers with the new surface.

import (
	"context"
	"errors"
	"testing"

	"citare/internal/gtopdb"
	"citare/internal/sqlfe"
)

const gpcrJoinDatalog = `Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`

func TestRequestErrorTaxonomy(t *testing.T) {
	c := newPaperCiter(t)
	ctx := context.Background()
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"no query", Request{}, ErrParse},
		{"both queries", Request{SQL: "SELECT FName FROM Family", Datalog: "Q(X) :- Family(X, N, T)"}, ErrParse},
		{"sql syntax", Request{SQL: "SELEKT nope"}, ErrParse},
		{"sql unknown table", Request{SQL: "SELECT x FROM Nada"}, ErrParse},
		{"datalog syntax", Request{Datalog: "Q(X) :-"}, ErrParse},
		{"unsafe head", Request{Datalog: "Q(X) :- Family(F, N, T)"}, ErrParse},
		{"bad format", Request{Datalog: gpcrJoinDatalog, Format: "yaml"}, ErrParse},
		{"unknown relation", Request{Datalog: "Q(X) :- Nope(X)"}, ErrSchema},
		{"arity mismatch", Request{Datalog: "Q(X) :- Family(X)"}, ErrSchema},
		{"tuple limit", Request{Datalog: `Q(N) :- Family(F, N, Ty), Ty = "gpcr"`, MaxTuples: 1}, ErrLimit},
	}
	for _, tc := range cases {
		_, err := c.Cite(ctx, tc.req)
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want errors.Is(err, %v)", tc.name, err, tc.want)
		}
	}

	// The original cause stays reachable: a SQL parse error still carries
	// its position through the taxonomy wrapper.
	_, err := c.Cite(ctx, Request{SQL: "SELECT x FROM Nada"})
	var se *sqlfe.Error
	if !errors.As(err, &se) {
		t.Fatalf("underlying *sqlfe.Error lost: %v", err)
	}
}

func TestRequestCanceledContext(t *testing.T) {
	c := newPaperCiter(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Cite(ctx, Request{Datalog: gpcrJoinDatalog})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context.Canceled not reachable through %v", err)
	}
}

func TestDeprecatedWrappersMatchCite(t *testing.T) {
	c := newPaperCiter(t)
	want, err := c.Cite(context.Background(), Request{Datalog: gpcrJoinDatalog})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.CiteDatalog(gpcrJoinDatalog)
	if err != nil {
		t.Fatal(err)
	}
	if got.CitationJSON() != want.CitationJSON() {
		t.Fatalf("CiteDatalog diverged from Cite:\n got %s\nwant %s", got.CitationJSON(), want.CitationJSON())
	}
	sql := `SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'`
	wantSQL, err := c.Cite(context.Background(), Request{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	gotSQL, err := c.CiteSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if gotSQL.CitationJSON() != wantSQL.CitationJSON() {
		t.Fatal("CiteSQL diverged from Cite")
	}
}

func TestTupleAccessorsRangeErrors(t *testing.T) {
	c := newPaperCiter(t)
	res, err := c.Cite(context.Background(), Request{Datalog: gpcrJoinDatalog})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTuples() == 0 {
		t.Fatal("no tuples")
	}
	for _, i := range []int{-1, res.NumTuples(), res.NumTuples() + 7} {
		if _, err := res.TuplePolynomialAt(i); !errors.Is(err, ErrRange) {
			t.Fatalf("TuplePolynomialAt(%d) err = %v, want ErrRange", i, err)
		}
		if _, err := res.TupleCitationJSONAt(i); !errors.Is(err, ErrRange) {
			t.Fatalf("TupleCitationJSONAt(%d) err = %v, want ErrRange", i, err)
		}
	}
	// In-range accessors agree with the deprecated silent ones.
	poly, err := res.TuplePolynomialAt(0)
	if err != nil || poly == "" || poly != res.TuplePolynomial(0) {
		t.Fatalf("TuplePolynomialAt(0) = %q, %v; deprecated %q", poly, err, res.TuplePolynomial(0))
	}
	cj, err := res.TupleCitationJSONAt(0)
	if err != nil || cj != res.TupleCitationJSON(0) {
		t.Fatalf("TupleCitationJSONAt(0) = %q, %v", cj, err)
	}
}

func TestRequestMaxRewritings(t *testing.T) {
	// Disable the §2.3 preference pruning so the paper query keeps all its
	// rewritings and the per-request bound has something to cut.
	c := newPaperCiter(t, WithPolicy(Policy{
		Times: Join, Plus: Union, PlusR: Union, Agg: Union,
		AllowPartial: true, IdempotentPlus: true,
	}))
	full, err := c.Cite(context.Background(), Request{Datalog: gpcrJoinDatalog})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := c.Cite(context.Background(), Request{Datalog: gpcrJoinDatalog, MaxRewritings: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded.Rewritings()) > 1 {
		t.Fatalf("MaxRewritings=1 produced %d rewritings", len(bounded.Rewritings()))
	}
	if len(full.Rewritings()) <= 1 {
		t.Fatalf("paper query should admit several rewritings, got %d", len(full.Rewritings()))
	}
}

// TestRequestMaxRewritingsClampedToPolicy: a request can tighten the
// policy's rewriting bound but never raise it past the operator's guard.
func TestRequestMaxRewritingsClampedToPolicy(t *testing.T) {
	c := newPaperCiter(t, WithPolicy(Policy{
		Times: Join, Plus: Union, PlusR: Union, Agg: Union,
		AllowPartial: true, MaxRewritings: 1,
	}))
	res, err := c.Cite(context.Background(), Request{Datalog: gpcrJoinDatalog, MaxRewritings: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings()) > 1 {
		t.Fatalf("request raised the policy bound: %d rewritings", len(res.Rewritings()))
	}
}

func TestRequestFormatAndRendered(t *testing.T) {
	c := newPaperCiter(t)
	res, err := c.Cite(context.Background(), Request{Datalog: gpcrJoinDatalog, Format: "bibtex"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Format() != "bibtex" {
		t.Fatalf("Format() = %q", res.Format())
	}
	out, err := res.Rendered()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := res.Render("bibtex")
	if err != nil {
		t.Fatal(err)
	}
	if out != explicit {
		t.Fatal("Rendered() diverged from Render(request format)")
	}
}

func TestCiteEachStreams(t *testing.T) {
	c := newPaperCiter(t)
	res, err := c.Cite(context.Background(), Request{Datalog: gpcrJoinDatalog})
	if err != nil {
		t.Fatal(err)
	}
	var got []Tuple
	err = c.CiteEach(context.Background(), Request{Datalog: gpcrJoinDatalog}, func(tu Tuple) error {
		got = append(got, tu)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != res.NumTuples() {
		t.Fatalf("streamed %d tuples, want %d", len(got), res.NumTuples())
	}
	for i, tu := range got {
		if tu.Index != i {
			t.Fatalf("tuple %d has index %d", i, tu.Index)
		}
		wantPoly, _ := res.TuplePolynomialAt(i)
		wantJSON, _ := res.TupleCitationJSONAt(i)
		rows := res.Rows()
		if tu.Polynomial != wantPoly || tu.CitationJSON != wantJSON {
			t.Fatalf("tuple %d diverged from Cite:\n got %q / %q\nwant %q / %q",
				i, tu.Polynomial, tu.CitationJSON, wantPoly, wantJSON)
		}
		if len(tu.Values) != len(rows[i]) {
			t.Fatalf("tuple %d values %v vs rows %v", i, tu.Values, rows[i])
		}
		for j := range tu.Values {
			if tu.Values[j] != rows[i][j] {
				t.Fatalf("tuple %d values %v vs rows %v", i, tu.Values, rows[i])
			}
		}
	}

	// A callback error aborts the stream with that error, untagged.
	sentinel := errors.New("stop here")
	err = c.CiteEach(context.Background(), Request{Datalog: gpcrJoinDatalog}, func(Tuple) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("callback error lost: %v", err)
	}
}

func TestCachedCiterRequestAPI(t *testing.T) {
	cached := NewCached(newPaperCiter(t, WithNeutralCitation(gtopdb.DatabaseCitation())))
	ctx := context.Background()

	a, err := cached.Cite(ctx, Request{Datalog: gpcrJoinDatalog})
	if err != nil {
		t.Fatal(err)
	}
	// A syntactic variant hits the same entry.
	b, err := cached.Cite(ctx, Request{Datalog: `Q(Name) :- FamilyIntro(Fid, Text), Family(Fid, Name, Kind), Kind = "gpcr"`})
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := cached.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if a.CitationJSON() != b.CitationJSON() {
		t.Fatal("cached variant diverged")
	}

	// Different output-affecting options key separate entries.
	if _, err := cached.Cite(ctx, Request{Datalog: gpcrJoinDatalog, MaxRewritings: 1}); err != nil {
		t.Fatal(err)
	}
	if _, misses := cached.Stats(); misses != 2 {
		t.Fatalf("MaxRewritings variant shared an entry: misses = %d, want 2", misses)
	}

	// A cache hit under a different render format re-wraps, not re-renders.
	x, err := cached.Cite(ctx, Request{Datalog: gpcrJoinDatalog, Format: "xml"})
	if err != nil {
		t.Fatal(err)
	}
	if x.Format() != "xml" {
		t.Fatalf("hit lost the request format: %q", x.Format())
	}
	if hits, _ := cached.Stats(); hits != 2 {
		t.Fatalf("format variant missed the cache: hits = %d", hits)
	}
}
