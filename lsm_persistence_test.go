package citare

// Durable time-travel acceptance for the LSM backend (ISSUE 10): the
// citegraph workload is loaded into a persistent store along with
// follow-up versioned commits, the store is closed and reopened from disk
// with no reload, and everything observable (head citations, AsOf reads at
// every committed version, sharded scatter-gather, streaming, resilient
// evaluation) is byte-identical to the in-memory reference backend.
//
// Scale follows the repo's stress convention: ScaleSmall in ordinary test
// runs (CI included — it fits -race), ScaleStress (1.05M tuples, the
// acceptance walk) when CITARE_LSM_STRESS is set — the stress instance
// takes minutes and would trip the per-package test timeout if always on:
//
//	CITARE_LSM_STRESS=1 go test -run TestLSMDurableCitegraphParity -timeout 60m .

import (
	"fmt"
	"os"
	"testing"

	"citare/internal/backend"
	"citare/internal/citegraph"
	"citare/internal/lsm"
	"citare/internal/shard"
	"citare/internal/storage"
)

// durableAnchor is the work the update batches cite and the AsOf probes
// anchor on: mid-popularity, so its incoming list changes at every version
// without the quadratic hot-key render (see runB21's caveat on streaming
// the Zipf head at stress scale).
func durableAnchor(cfg citegraph.Config) string {
	return citegraph.WorkID(cfg.Works / 120)
}

// durableWorkload mirrors the B21 case list: hot- and tail-key resolution,
// mid-popularity incoming/co-citation probes, and the deep joins — every
// shape, none quadratic in the Zipf head's in-degree.
func durableWorkload(cfg citegraph.Config) []mixedQuery {
	hot, mid, tail := citegraph.HotWork(), durableAnchor(cfg), citegraph.WorkID(cfg.Works-1)
	return []mixedQuery{
		{false, citegraph.ResolutionQuery(hot)},
		{false, citegraph.ResolutionQuery(tail)},
		{false, citegraph.IncomingQuery(mid)},
		{false, citegraph.CoCitationQuery(mid)},
		{false, citegraph.ChainQuery(tail)},
		{false, citegraph.AuthorProvenanceQuery(citegraph.AuthorID(7))},
		{false, citegraph.VenueRollupQuery(citegraph.VenueID(3))},
	}
}

// applyCitegraphHistory loads the generated citegraph base instance as
// version 1, then applies two late-breaking update batches — fresh works
// citing the anchor work, with one reference retracted in the second
// batch — committing after each. Identical calls against any Backend
// produce identical histories (generation and iteration are deterministic).
func applyCitegraphHistory(t *testing.T, b backend.Backend, cfg citegraph.Config) []uint64 {
	t.Helper()
	db := citegraph.Generate(cfg)
	for _, rs := range db.Schema().Relations() {
		var ierr error
		db.Relation(rs.Name).Scan(func(tu storage.Tuple) bool {
			ierr = b.Insert(rs.Name, tu...)
			return ierr == nil
		})
		if ierr != nil {
			t.Fatalf("load %s: %v", rs.Name, ierr)
		}
	}
	commit := func(label string) uint64 {
		v, err := b.Commit(label)
		if err != nil {
			t.Fatalf("commit %s: %v", label, err)
		}
		return v
	}
	anchor := durableAnchor(cfg)
	versions := []uint64{commit("base")}
	for batch := 0; batch < 2; batch++ {
		for j := 0; j < 5; j++ {
			w := citegraph.WorkID(cfg.Works + batch*5 + j)
			for _, ins := range [][]string{
				{"Work", w, "Late-breaking " + w, citegraph.VenueID(0), "2017"},
				{"Wrote", citegraph.AuthorID(j), w},
				{"Cites", w, anchor},
			} {
				if err := b.Insert(ins[0], ins[1:]...); err != nil {
					t.Fatalf("batch %d insert %v: %v", batch, ins, err)
				}
			}
		}
		if batch == 1 {
			// Retract one of the first batch's references: AsOf must see it
			// at versions 2..2 only.
			ok, err := b.Delete("Cites", citegraph.WorkID(cfg.Works), anchor)
			if err != nil || !ok {
				t.Fatalf("retract = (%v, %v), want live delete", ok, err)
			}
		}
		versions = append(versions, commit(fmt.Sprintf("batch-%d", batch+1)))
	}
	return versions
}

// backendCitegraphCiter builds a citer over any backend with the citegraph
// policy library.
func backendCitegraphCiter(t *testing.T, b backend.Backend) *Citer {
	t.Helper()
	c, err := NewBackendFromProgram(b, citegraph.ViewsProgram,
		WithNeutralCitation(citegraph.DatasetCitation()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLSMDurableCitegraphParity is the ISSUE 10 acceptance walk: load,
// restart, verify everything against the in-memory reference.
func TestLSMDurableCitegraphParity(t *testing.T) {
	cfg := citegraph.ScaleSmall()
	opt := lsm.Options{}
	if os.Getenv("CITARE_LSM_STRESS") != "" {
		cfg = citegraph.ScaleStress() // 1,050,200 base tuples
		opt.MemtableBytes = 64 << 20  // fewer flush pauses during the bulk load
	}
	dir := t.TempDir()

	mem := backend.NewMemory(citegraph.Schema(cfg))
	memVers := applyCitegraphHistory(t, mem, cfg)

	ldb, err := backend.OpenLSM(dir, citegraph.Schema(cfg), opt)
	if err != nil {
		t.Fatal(err)
	}
	lsmVers := applyCitegraphHistory(t, ldb, cfg)
	if fmt.Sprint(lsmVers) != fmt.Sprint(memVers) {
		t.Fatalf("committed versions diverge: lsm %v, memory %v", lsmVers, memVers)
	}
	if err := ldb.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen purely from disk: nil schema means even the schema comes from
	// the manifest — nothing is regenerated or reloaded.
	re, err := backend.OpenLSM(dir, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	base := backendCitegraphCiter(t, mem)
	durable := backendCitegraphCiter(t, re)

	// Head citations: byte-identical through the reopened store.
	for _, q := range durableWorkload(cfg) {
		want, err := cite(base, q)
		if err != nil {
			t.Fatalf("memory %s: %v", q.src, err)
		}
		got, err := cite(durable, q)
		if err != nil {
			t.Fatalf("lsm %s: %v", q.src, err)
		}
		if g, w := citationFingerprint(t, got), citationFingerprint(t, want); g != w {
			t.Fatalf("head %s:\n got %s\nwant %s", q.src, g, w)
		}
	}

	// Time travel: every committed version answers identically, served
	// straight from the version-stamped persistent keys. The incoming-cites
	// probe on the anchor work changes at every version (insertions, then a
	// retraction), so these fingerprints genuinely differ across versions.
	asOfQ := mixedQuery{false, citegraph.IncomingQuery(durableAnchor(cfg))}
	for _, v := range memVers {
		if got, want := re.Label(v), mem.Label(v); got != want {
			t.Fatalf("label(%d) = %q, want %q", v, got, want)
		}
		mc, err := base.AsOf(v)
		if err != nil {
			t.Fatalf("memory AsOf(%d): %v", v, err)
		}
		lc, err := durable.AsOf(v)
		if err != nil {
			t.Fatalf("lsm AsOf(%d): %v", v, err)
		}
		want, err := cite(mc, asOfQ)
		if err != nil {
			t.Fatalf("memory AsOf(%d) cite: %v", v, err)
		}
		got, err := cite(lc, asOfQ)
		if err != nil {
			t.Fatalf("lsm AsOf(%d) cite: %v", v, err)
		}
		if g, w := citationFingerprint(t, got), citationFingerprint(t, want); g != w {
			t.Fatalf("AsOf(%d):\n got %s\nwant %s", v, g, w)
		}
	}

	// Sharded scatter-gather over the persistent head: hash-partition a
	// snapshot view straight off the store and compare against the
	// in-memory baseline, with resilience armor on (fault-free runs must be
	// invisible and full-coverage).
	v, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := shard.FromView(re.Schema(), v, 3)
	v.Release()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedFromProgram(sdb, citegraph.ViewsProgram,
		WithNeutralCitation(citegraph.DatasetCitation()),
		WithResilience(ResilienceConfig{Seed: 11}))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range durableWorkload(cfg) {
		want, err := cite(base, q)
		if err != nil {
			t.Fatalf("memory %s: %v", q.src, err)
		}
		got, err := cite(sharded, q)
		if err != nil {
			t.Fatalf("sharded-lsm %s: %v", q.src, err)
		}
		if g, w := citationFingerprint(t, got), citationFingerprint(t, want); g != w {
			t.Fatalf("sharded %s:\n got %s\nwant %s", q.src, g, w)
		}
		if got.Coverage().Partial() {
			t.Fatalf("%s: fault-free resilient run reported partial coverage", q.src)
		}
	}

	// Streaming over the persistent store: streamed bytes match the
	// materialized citation.
	for qi, mq := range durableWorkload(cfg) {
		t.Run(fmt.Sprintf("stream/q%d", qi), func(t *testing.T) {
			assertStreamMatchesCite(t, durable, Request{Datalog: mq.src})
		})
	}
}
