package citare

// B14–B16, B20 — shard-scaling benchmarks: per-shard snapshot cost, pruned
// point-lookup citations (a bound shard key touches one shard),
// scatter-gather join throughput vs the unsharded evaluator, and the
// hedging payoff against a straggling shard.

import (
	"fmt"
	"testing"
	"time"

	"citare/internal/eval"
	"citare/internal/fault"
	"citare/internal/gtopdb"
	"citare/internal/shard"
	"citare/internal/workload"
)

var benchShardCounts = []int{1, 4, 8}

// B14 — sharded snapshot cost stays O(shards × relations): taking a
// snapshot of a partitioned database, and the copy-on-write price of the
// first write into one shard afterwards.
func BenchmarkShardedSnapshot(b *testing.B) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 2000
	db := gtopdb.Generate(cfg)
	for _, n := range benchShardCounts {
		sdb, err := shard.FromDB(db, n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("take/shards=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = sdb.Snapshot()
			}
		})
		b.Run(fmt.Sprintf("take+first-write/shards=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = sdb.Snapshot()
				sdb.MustInsert("Family", fmt.Sprintf("s%d_%d", n, i), "N", "type-01")
			}
		})
	}
}

// B15 — pruned point-lookup citations: the query binds Family's shard key,
// so the sharded engine evaluates against a single shard regardless of the
// shard count.
func BenchmarkPrunedPointCite(b *testing.B) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 1000
	db := gtopdb.Generate(cfg)
	const q = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), F = "500"`

	bench := func(b *testing.B, c *Citer) {
		b.Helper()
		if _, err := c.CiteDatalog(q); err != nil { // materialize views once
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.CiteDatalog(q); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("unsharded", func(b *testing.B) {
		c, err := NewFromProgram(db, gtopdb.ViewsProgram)
		if err != nil {
			b.Fatal(err)
		}
		bench(b, c)
	})
	for _, n := range benchShardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			sdb, err := shard.FromDB(db, n)
			if err != nil {
				b.Fatal(err)
			}
			c, err := NewShardedFromProgram(sdb, gtopdb.ViewsProgram)
			if err != nil {
				b.Fatal(err)
			}
			bench(b, c)
		})
	}
}

// B16 — scatter-gather join throughput: the chain join's first atom is
// partitioned by shard and gathered; workers=shards.
func BenchmarkScatterGatherJoin(b *testing.B) {
	db := workload.ChainDB(3, 1500, 64, 7)
	q := workload.ChainQuery(3)

	b.Run("unsharded", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			res, err := eval.EvalOpts(db, q, eval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			n = len(res.Tuples)
		}
		b.ReportMetric(float64(n), "out-tuples")
	})
	for _, n := range benchShardCounts {
		sdb, err := shard.FromDB(db, n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			var out int
			for i := 0; i < b.N; i++ {
				res, err := eval.EvalSharded(sdb, q, eval.Options{Parallel: n})
				if err != nil {
					b.Fatal(err)
				}
				out = len(res.Tuples)
			}
			b.ReportMetric(float64(out), "out-tuples")
		})
	}
}

// B20 — hedging against a straggler: scatter-gather citations with one of
// four shards answering its first scan 10ms late. Without hedging every
// request eats the full straggler latency; with hedging the duplicate scan
// (which lands past the shard's slow budget and runs fast) wins after
// HedgeAfter. The fault schedule resets per iteration so every request sees
// the same one-slow-scan world.
func BenchmarkHedgedStraggler(b *testing.B) {
	const lag = 10 * time.Millisecond
	db := gtopdb.PaperInstance()
	const q = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`
	for _, hedge := range []time.Duration{0, 2 * time.Millisecond} {
		name := "hedge=off"
		if hedge > 0 {
			name = fmt.Sprintf("hedge=%s", hedge)
		}
		b.Run(name, func(b *testing.B) {
			sdb, err := shard.FromDB(db, 4)
			if err != nil {
				b.Fatal(err)
			}
			c, err := NewShardedFromProgram(sdb, gtopdb.ViewsProgram,
				WithResilience(ResilienceConfig{HedgeAfter: hedge, Seed: 20}))
			if err != nil {
				b.Fatal(err)
			}
			in := fault.NewInjector(20)
			c.Engine().SetShardWrapper(in.Wrap)
			if err := c.Reset(); err != nil {
				b.Fatal(err)
			}
			if _, err := c.CiteDatalog(q); err != nil { // materialize views once
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.SetFault(0, fault.ShardFault{Latency: lag, SlowOps: 1})
				if _, err := c.CiteDatalog(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
