package citare

// Streaming-vs-materialized byte-parity property test at the facade level:
// for every query of the gtopdb and advisor workloads, the tuples streamed
// by CiteEach must be byte-identical — values, polynomials, rendered
// citation records, order, and count — to the materialized Cite result, for
// every execution strategy (sequential, parallel, adaptive, scatter-gather)
// and across shard counts.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"citare/internal/citegraph"
	"citare/internal/gtopdb"
)

// assertStreamMatchesCite checks that CiteEach streams exactly the tuples of
// the materialized Cite result — values, order, index, polynomial, rendered
// citation — for one request.
func assertStreamMatchesCite(t *testing.T, c *Citer, req Request) {
	t.Helper()
	want, err := c.Cite(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	rows := want.Rows()
	i := 0
	err = c.CiteEach(context.Background(), req, func(tu Tuple) error {
		if i >= len(rows) {
			return fmt.Errorf("streamed extra tuple %v", tu.Values)
		}
		if tu.Index != i {
			return fmt.Errorf("tuple %d streamed with index %d", i, tu.Index)
		}
		if got, exp := strings.Join(tu.Values, "\x00"), strings.Join(rows[i], "\x00"); got != exp {
			return fmt.Errorf("tuple %d values %q, want %q", i, tu.Values, rows[i])
		}
		wantPoly, err := want.TuplePolynomialAt(i)
		if err != nil {
			return err
		}
		if tu.Polynomial != wantPoly {
			return fmt.Errorf("tuple %d polynomial:\n got %s\nwant %s", i, tu.Polynomial, wantPoly)
		}
		wantJSON, err := want.TupleCitationJSONAt(i)
		if err != nil {
			return err
		}
		if tu.CitationJSON != wantJSON {
			return fmt.Errorf("tuple %d citation:\n got %s\nwant %s", i, tu.CitationJSON, wantJSON)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(rows) {
		t.Fatalf("streamed %d tuples, want %d", i, len(rows))
	}
}

func TestCiteEachMatchesCiteAllStrategies(t *testing.T) {
	db := gtopdb.PaperInstance()
	newUnsharded := func(par int) *Citer {
		c, err := NewFromProgram(db, gtopdb.ViewsProgram,
			WithNeutralCitation(gtopdb.DatabaseCitation()), WithParallelEval(par))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cfgs := []struct {
		name  string
		citer *Citer
	}{
		{"sequential", newUnsharded(1)},
		{"parallel-2", newUnsharded(2)},
		{"parallel-4", newUnsharded(4)},
		{"adaptive", newUnsharded(0)},
		{"scatter-2", shardedPaperCiter(t, db, 2)},
		{"scatter-3", shardedPaperCiter(t, db, 3)},
		{"scatter-5", shardedPaperCiter(t, db, 5)},
	}
	workloads := []struct {
		name    string
		queries []mixedQuery
	}{
		{"gtopdb", gtopdbWorkload()},
		{"advisor", advisorWorkload()},
	}
	for _, cfg := range cfgs {
		for _, wl := range workloads {
			for qi, mq := range wl.queries {
				t.Run(fmt.Sprintf("%s/%s/q%d", cfg.name, wl.name, qi), func(t *testing.T) {
					req := Request{}
					if mq.sql {
						req.SQL = mq.src
					} else {
						req.Datalog = mq.src
					}
					assertStreamMatchesCite(t, cfg.citer, req)
				})
			}
		}
	}
}

// TestCitegraphStreamParity repeats the streamed-vs-materialized byte-parity
// property on a small citegraph instance — hot-key probes and deep joins —
// for the sequential, adaptive and scatter-gather strategies (ISSUE 9
// satellite 2).
func TestCitegraphStreamParity(t *testing.T) {
	db := citegraph.Generate(citegraph.ScaleSmall())
	cfgs := []struct {
		name  string
		citer *Citer
	}{
		{"sequential", citegraphCiter(t, db, WithParallelEval(1))},
		{"adaptive", citegraphCiter(t, db)},
		{"scatter-3", shardedCitegraphCiter(t, db, 3)},
		{"scatter-5", shardedCitegraphCiter(t, db, 5)},
	}
	for _, cfg := range cfgs {
		for qi, mq := range citegraphWorkload() {
			t.Run(fmt.Sprintf("%s/q%d", cfg.name, qi), func(t *testing.T) {
				assertStreamMatchesCite(t, cfg.citer, Request{Datalog: mq.src})
			})
		}
	}
}
