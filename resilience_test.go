package citare

// Chaos property tests for the fault-tolerant scatter-gather pipeline: with
// zero faults the resilient driver is invisible (citations byte-identical to
// the unsharded engine across shard counts and strategies), a stalled shard
// either fails fast with ErrShardUnavailable or degrades under
// MinShardCoverage with an accurate Coverage report, and cancellation cuts
// through retries promptly without leaking goroutines. Run with -race (CI's
// chaos job does).

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"citare/internal/citegraph"
	"citare/internal/eval"
	"citare/internal/fault"
	"citare/internal/gtopdb"
)

// resilientPaperCiter builds a sharded paper-instance citer with the fault
// injector wrapped around the shard-scan seam and the given resilient
// configuration. The injector applies from the next snapshot, so the epoch
// is cycled once.
func resilientPaperCiter(t *testing.T, shards int, in *fault.Injector, cfg ResilienceConfig) *Citer {
	t.Helper()
	c := shardedPaperCiter(t, gtopdb.PaperInstance(), shards, WithResilience(cfg))
	c.engine.SetShardWrapper(in.Wrap)
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	return c
}

// chaosConfig keeps chaos tests fast: short attempt deadlines, token
// backoffs, and a breaker too patient to interfere unless a test wants it.
func chaosConfig() ResilienceConfig {
	return ResilienceConfig{
		AttemptTimeout:   50 * time.Millisecond,
		MaxAttempts:      2,
		BackoffBase:      time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		BreakerThreshold: 1000,
		Seed:             42,
	}
}

// TestResilienceNoFaultParity: with resilience enabled and no faults
// injected, every query of the gtopdb and advisor workloads produces a
// citation byte-identical to the unsharded engine's, across shard counts —
// the armor must be invisible when nothing attacks.
func TestResilienceNoFaultParity(t *testing.T) {
	db := gtopdb.PaperInstance()
	base, err := NewFromProgram(db, gtopdb.ViewsProgram, WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	queries := append(gtopdbWorkload(), advisorWorkload()...)
	for _, shards := range []int{1, 2, 3, 5} {
		c := shardedPaperCiter(t, db, shards, WithResilience(ResilienceConfig{Seed: 7}))
		for _, q := range queries {
			want, err := cite(base, q)
			if err != nil {
				t.Fatalf("unsharded %s: %v", q.src, err)
			}
			got, err := cite(c, q)
			if err != nil {
				t.Fatalf("resilient shards=%d %s: %v", shards, q.src, err)
			}
			if g, w := citationFingerprint(t, got), citationFingerprint(t, want); g != w {
				t.Fatalf("resilient shards=%d, %s:\n got %s\nwant %s", shards, q.src, g, w)
			}
			if got.Coverage().Partial() {
				t.Fatalf("shards=%d, %s: fault-free run reported partial coverage %+v", shards, q.src, got.Coverage())
			}
		}
	}
}

// TestChaosStalledShard is the headline chaos property: with 1 of N shards
// stalled (holding every scan until its attempt deadline), the default
// policy fails fast with ErrShardUnavailable, while MinShardCoverage N-1
// returns a degraded citation promptly, paired with a *PartialError whose
// Coverage pins the stalled shard exactly.
func TestChaosStalledShard(t *testing.T) {
	const shards = 3
	const stalled = 1
	in := fault.NewInjector(42)
	in.SetFault(stalled, fault.ShardFault{Stall: true})
	c := resilientPaperCiter(t, shards, in, chaosConfig())
	const q = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`

	// Default policy: full coverage required. The stall is bounded by the
	// per-attempt deadline, not by the caller's patience — the typed failure
	// arrives in attempt-budget time.
	start := time.Now()
	_, err := c.Cite(context.Background(), Request{Datalog: q})
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("strict cite err = %v, want ErrShardUnavailable", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("strict fail-fast took %v", el)
	}

	// MinShardCoverage N-1: the surviving shards' citation comes back,
	// tagged partial, with the coverage report naming the stalled shard.
	start = time.Now()
	ct, err := c.Cite(context.Background(), Request{Datalog: q, MinShardCoverage: shards - 1})
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("degraded cite took %v", el)
	}
	var pe *PartialError
	if !errors.As(err, &pe) || ct == nil {
		t.Fatalf("degraded cite = (%v, %v), want citation + *PartialError", ct, err)
	}
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("partial error does not unwrap to ErrPartial: %v", err)
	}
	cov := ct.Coverage()
	if cov == nil || pe.Coverage == nil {
		t.Fatal("degraded citation carries no coverage report")
	}
	if cov.Shards != shards || cov.Skipped != 1 || cov.Answered+cov.Pruned != shards-1 {
		t.Fatalf("coverage %+v, want %d shards with exactly the stalled one skipped", cov, shards)
	}
	if cov.PerShard[stalled].State != eval.ShardSkipped {
		t.Fatalf("stalled shard state %q, want %q (coverage %+v)", cov.PerShard[stalled].State, eval.ShardSkipped, cov)
	}
	if cov.Attempts == 0 || cov.PerShard[stalled].Attempts == 0 {
		t.Fatalf("coverage records no attempts against the stalled shard: %+v", cov)
	}
	for si, sc := range cov.PerShard {
		if si != stalled && sc.State == eval.ShardSkipped {
			t.Fatalf("healthy shard %d reported skipped: %+v", si, cov)
		}
	}
	if len(ct.Rows()) == 0 {
		t.Fatal("degraded citation lost every tuple; surviving shards should still answer")
	}
}

// TestCitegraphChaosParity runs the citegraph workload through the
// resilient sharded engine (ISSUE 9 satellite 2): fault-free it is
// byte-identical to the unsharded baseline; with one shard stalled the
// strict policy fails fast with ErrShardUnavailable while MinShardCoverage
// N-1 degrades into a partial citation whose coverage pins the stalled
// shard.
func TestCitegraphChaosParity(t *testing.T) {
	const shards = 3
	db := citegraph.Generate(citegraph.ScaleSmall())
	base := citegraphCiter(t, db)

	// Fault-free: the armor is invisible on the citegraph deep joins.
	clean := shardedCitegraphCiter(t, db, shards, WithResilience(ResilienceConfig{Seed: 11}))
	for _, q := range citegraphWorkload() {
		want, err := cite(base, q)
		if err != nil {
			t.Fatalf("unsharded %s: %v", q.src, err)
		}
		got, err := cite(clean, q)
		if err != nil {
			t.Fatalf("resilient %s: %v", q.src, err)
		}
		if g, w := citationFingerprint(t, got), citationFingerprint(t, want); g != w {
			t.Fatalf("%s:\n got %s\nwant %s", q.src, g, w)
		}
		if got.Coverage().Partial() {
			t.Fatalf("%s: fault-free run reported partial coverage", q.src)
		}
	}

	// One shard stalled. The hot-key probe targets the Zipf head, so under
	// the default Cited routing the stalled shard may or may not own it —
	// both outcomes are exercised across the workload's anchors.
	const stalled = 1
	in := fault.NewInjector(17)
	in.SetFault(stalled, fault.ShardFault{Stall: true})
	c := shardedCitegraphCiter(t, db, shards, WithResilience(chaosConfig()))
	c.engine.SetShardWrapper(in.Wrap)
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	q := citegraph.IncomingQuery(citegraph.HotWork())
	if _, err := c.Cite(context.Background(), Request{Datalog: q}); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("strict cite err = %v, want ErrShardUnavailable", err)
	}
	ct, err := c.Cite(context.Background(), Request{Datalog: q, MinShardCoverage: shards - 1})
	var pe *PartialError
	if !errors.As(err, &pe) || ct == nil {
		t.Fatalf("degraded cite = (%v, %v), want citation + *PartialError", ct, err)
	}
	cov := ct.Coverage()
	if cov == nil || cov.Shards != shards || cov.Skipped != 1 {
		t.Fatalf("coverage %+v, want %d shards with exactly one skipped", cov, shards)
	}
	if cov.PerShard[stalled].State != eval.ShardSkipped {
		t.Fatalf("stalled shard state %q, want %q", cov.PerShard[stalled].State, eval.ShardSkipped)
	}
}

// TestChaosTransientRecovery: transient failures within the attempt budget
// retry to full success — same bytes as an unfaulted run, full coverage,
// and the retries visible in the coverage accounting.
func TestChaosTransientRecovery(t *testing.T) {
	const q = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`
	clean := shardedPaperCiter(t, gtopdb.PaperInstance(), 3, WithResilience(ResilienceConfig{Seed: 9}))
	want, err := clean.Cite(context.Background(), Request{Datalog: q})
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(9)
	in.SetFault(0, fault.ShardFault{FailOps: 1})
	in.SetFault(2, fault.ShardFault{FailOps: 1})
	c := resilientPaperCiter(t, 3, in, chaosConfig())
	got, err := c.Cite(context.Background(), Request{Datalog: q})
	if err != nil {
		t.Fatalf("cite with transient faults: %v", err)
	}
	if g, w := citationFingerprint(t, got), citationFingerprint(t, want); g != w {
		t.Fatalf("retried citation diverged:\n got %s\nwant %s", g, w)
	}
	cov := got.Coverage()
	if cov.Partial() {
		t.Fatalf("recovered run reported partial coverage: %+v", cov)
	}
	if cov.Retries == 0 {
		t.Fatalf("coverage records no retries despite injected transient faults: %+v", cov)
	}
}

// TestChaosCancelDuringRetry: canceling the request context while the driver
// is waiting out a stalled shard returns ErrCanceled promptly — the retry
// machinery must not outlive its caller — and the goroutine count settles.
func TestChaosCancelDuringRetry(t *testing.T) {
	in := fault.NewInjector(5)
	in.SetFault(1, fault.ShardFault{Stall: true})
	cfg := chaosConfig()
	cfg.AttemptTimeout = 10 * time.Second // the cancel must cut in, not the deadline
	cfg.BackoffBase, cfg.BackoffMax = time.Second, time.Second
	c := resilientPaperCiter(t, 3, in, cfg)
	const q = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Cite(ctx, Request{Datalog: q})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancel-to-return took %v", el)
	}
	waitGoroutines(t, before)
}
