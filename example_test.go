package citare_test

import (
	"fmt"
	"log"

	"citare"
	"citare/internal/gtopdb"
)

// ExampleCiter_CiteDatalog reproduces the paper's Example 2.2: rewriting a
// query over the citation views and assembling its citation.
func ExampleCiter_CiteDatalog() {
	citer, err := citare.NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram)
	if err != nil {
		log.Fatal(err)
	}
	res, err := citer.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows() {
		fmt.Println(row[0])
	}
	fmt.Println(res.TuplePolynomial(0))
	// Output:
	// Calcitonin
	// b
	// Orexin
	// V5("gpcr")
}

// ExampleCiter_CiteSQL cites a SQL query; the SQL and datalog front ends
// produce identical citations for equivalent queries.
func ExampleCiter_CiteSQL() {
	citer, err := citare.NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram)
	if err != nil {
		log.Fatal(err)
	}
	res, err := citer.CiteSQL(`SELECT f.FName FROM Family f WHERE f.FID = '11'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.TupleCitationJSON(0))
	// Output:
	// {"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}
}

// ExampleNewCached shows the citation cache: equivalent query variants share
// one computed citation.
func ExampleNewCached() {
	citer, err := citare.NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram)
	if err != nil {
		log.Fatal(err)
	}
	cached := citare.NewCached(citer)
	if _, err := cached.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr"`); err != nil {
		log.Fatal(err)
	}
	if _, err := cached.CiteDatalog(`Q(Nm) :- Family(G, Nm, "gpcr")`); err != nil {
		log.Fatal(err)
	}
	hits, misses := cached.Stats()
	fmt.Printf("hits=%d misses=%d\n", hits, misses)
	// Output:
	// hits=1 misses=1
}

// ExampleCitation_Render renders one citation in the formats repositories
// ask for.
func ExampleCitation_Render() {
	citer, err := citare.NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram,
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := citer.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "no-matches"`)
	if err != nil {
		log.Fatal(err)
	}
	bib, err := res.Render("bibtex")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bib)
	// Output:
	// @misc{citare,
	//   note = {Database: IUPHAR/BPS Guide to PHARMACOLOGY, Publication: Pawson et al., Nucleic Acids Research 42(D1), 2014},
	//   howpublished = {guidetopharmacology.org},
	//   edition = {23},
	// }
}
