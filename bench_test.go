package citare

// Benchmark harness for the experiment suite of DESIGN.md / EXPERIMENTS.md.
//
// The paper (a CIDR vision paper) has no quantitative tables or figures; its
// §4 names the quantities a practical implementation must control — cost of
// rewriting enumeration, cost of citation construction, and citation size
// under idempotence and order pruning. Each benchmark below regenerates one
// row group of EXPERIMENTS.md (B1–B10).

import (
	"fmt"
	"testing"

	"citare/internal/core"
	"citare/internal/cq"
	"citare/internal/datalog"
	"citare/internal/eval"
	"citare/internal/gtopdb"
	"citare/internal/provenance"
	"citare/internal/rewrite"
	"citare/internal/sqlfe"
	"citare/internal/storage"
	"citare/internal/workload"
)

// B1 — rewriting enumeration cost vs. number of views (§4: "it is
// infeasible … to go through all rewritings").
func BenchmarkRewriteViews(b *testing.B) {
	const chain = 6
	q := workload.ChainQuery(chain)
	// A 6-chain admits 6+5+…+1 = 21 window views; the sweep starts at 6
	// (the smallest set that can cover the whole chain).
	for _, nViews := range []int{6, 11, 15, 18, 21} {
		views := workload.WindowViews(chain, nViews)
		b.Run(fmt.Sprintf("views=%d", len(views)), func(b *testing.B) {
			var total int
			for i := 0; i < b.N; i++ {
				rs, err := rewrite.Enumerate(q, views, rewrite.Options{})
				if err != nil {
					b.Fatal(err)
				}
				total = len(rs)
			}
			b.ReportMetric(float64(total), "rewritings")
		})
	}
}

// B2 — rewriting enumeration cost vs. query size.
func BenchmarkRewriteQuerySize(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4, 5, 6} {
		q := workload.ChainQuery(k)
		views := workload.WindowViews(k, 2*k)
		b.Run(fmt.Sprintf("subgoals=%d", k), func(b *testing.B) {
			var total int
			for i := 0; i < b.N; i++ {
				rs, err := rewrite.Enumerate(q, views, rewrite.Options{})
				if err != nil {
					b.Fatal(err)
				}
				total = len(rs)
			}
			b.ReportMetric(float64(total), "rewritings")
		})
	}
}

// B3 — end-to-end citation construction vs. database scale.
func BenchmarkCitePerTuple(b *testing.B) {
	for _, fams := range []int{50, 200, 800} {
		cfg := gtopdb.DefaultConfig()
		cfg.Families = fams
		db := gtopdb.Generate(cfg)
		b.Run(fmt.Sprintf("families=%d", fams), func(b *testing.B) {
			c, err := NewFromProgram(db, gtopdb.ViewsProgram)
			if err != nil {
				b.Fatal(err)
			}
			var tuples int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.CiteDatalog(`Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`)
				if err != nil {
					b.Fatal(err)
				}
				tuples = res.NumTuples()
			}
			b.ReportMetric(float64(tuples), "tuples")
		})
	}
}

// B4 — citation size ablation: raw semiring vs. idempotent + vs. idempotent
// with order pruning (§3.4).
func BenchmarkCitationSize(b *testing.B) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 200
	db := gtopdb.Generate(cfg)
	queryText := `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`
	policies := []struct {
		name string
		pol  Policy
	}{
		{"raw", Policy{Times: Join, Plus: Union, PlusR: Union, Agg: Union}},
		{"idempotent", Policy{Times: Join, Plus: Union, PlusR: Union, Agg: Union, IdempotentPlus: true}},
		{"idempotent+orders", Policy{Times: Join, Plus: Union, PlusR: Union, Agg: Union,
			IdempotentPlus: true, Orders: core.Orders{core.ByUncovered{}, core.ByViewCount{}},
			PreferredRewritings: true}},
	}
	for _, pc := range policies {
		b.Run(pc.name, func(b *testing.B) {
			c, err := NewFromProgram(db, gtopdb.ViewsProgram, WithPolicy(pc.pol))
			if err != nil {
				b.Fatal(err)
			}
			var monomials, bytes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.CiteDatalog(queryText)
				if err != nil {
					b.Fatal(err)
				}
				monomials, bytes = 0, len(res.CitationJSON())
				for ti := 0; ti < res.NumTuples(); ti++ {
					monomials += res.Result().Tuples[ti].Combined.NumMonomials()
				}
			}
			b.ReportMetric(float64(monomials), "monomials")
			b.ReportMetric(float64(bytes), "citation-bytes")
		})
	}
}

// B5 — interpretation cost: union vs. join for · and +R.
func BenchmarkPolicies(b *testing.B) {
	db := gtopdb.Generate(gtopdb.DefaultConfig())
	for _, times := range []Interp{Union, Join} {
		for _, plusR := range []Interp{Union, Join} {
			name := fmt.Sprintf("times=%s/plusR=%s", times, plusR)
			b.Run(name, func(b *testing.B) {
				pol := Policy{Times: times, Plus: Union, PlusR: plusR, Agg: Union, IdempotentPlus: true}
				c, err := NewFromProgram(db, gtopdb.ViewsProgram, WithPolicy(pol))
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "type-02", FamilyIntro(F, Tx)`); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// B6 — evaluation-engine join throughput (substrate).
func BenchmarkEvalJoin(b *testing.B) {
	for _, rows := range []int{100, 1000, 10000} {
		db := workload.ChainDB(3, rows, 64, 7)
		q := workload.ChainQuery(3)
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				res, err := eval.Eval(db, q)
				if err != nil {
					b.Fatal(err)
				}
				n = len(res.Tuples)
			}
			b.ReportMetric(float64(n), "out-tuples")
		})
	}
}

// B7 — provenance-semiring overhead (substrate; §3.1's foundation).
func BenchmarkProvenance(b *testing.B) {
	db := workload.ChainDB(2, 2000, 64, 9)
	q := workload.ChainQuery(2)
	b.Run("none", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Eval(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := provenance.Annotate[int](db, q, provenance.NatSemiring{},
				func(string, storage.Tuple) int { return 1 })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lineage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := provenance.Annotate[provenance.Lineage](db, q, provenance.LineageSemiring{},
				func(rel string, t storage.Tuple) provenance.Lineage {
					return provenance.LineageOf(provenance.TupleToken(rel, t))
				})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("why", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := provenance.Annotate[provenance.Witnesses](db, q, provenance.WhySemiring{},
				func(rel string, t storage.Tuple) provenance.Witnesses {
					return provenance.WitnessesOf([]provenance.Token{provenance.TupleToken(rel, t)})
				})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("poly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := provenance.PolyProvenance(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// B8 — parser throughput for both front ends.
func BenchmarkParseDatalog(b *testing.B) {
	src := `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), FC(F, C), Person(C, Pn, A), Ty = "gpcr"`
	for i := 0; i < b.N; i++ {
		if _, err := datalog.ParseQuery(src); err != nil {
			b.Fatal(err)
		}
	}
}

// B8 (continued) — views-program parsing.
func BenchmarkParseProgram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := datalog.ParseProgram(gtopdb.ViewsProgram); err != nil {
			b.Fatal(err)
		}
	}
}

// B8 (continued) — SQL front end.
func BenchmarkParseSQL(b *testing.B) {
	schema := gtopdb.Schema()
	src := `SELECT f.FName, i.Text FROM Family f JOIN FamilyIntro i ON f.FID = i.FID, FC c, Person p WHERE c.FID = f.FID AND c.PID = p.PID AND f.Type = 'gpcr'`
	for i := 0; i < b.N; i++ {
		if _, err := sqlfe.Parse(schema, src); err != nil {
			b.Fatal(err)
		}
	}
}

// B9 — minimality/pruning ablation: full Definition 2.2 checks vs. raw cover
// enumeration, and preferred-rewriting pruning at the citation level.
func BenchmarkPrunedVsExhaustive(b *testing.B) {
	const chain = 5
	q := workload.ChainQuery(chain)
	views := workload.WindowViews(chain, 12)
	b.Run("certified+minimal", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			rs, err := rewrite.Enumerate(q, views, rewrite.Options{AllowPartial: true})
			if err != nil {
				b.Fatal(err)
			}
			n = len(rs)
		}
		b.ReportMetric(float64(n), "rewritings")
	})
	b.Run("raw-covers", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			rs, err := rewrite.Enumerate(q, views, rewrite.Options{AllowPartial: true, SkipMinimality: true})
			if err != nil {
				b.Fatal(err)
			}
			n = len(rs)
		}
		b.ReportMetric(float64(n), "rewritings")
	})
}

// B10 — fixity overhead (§4): versioned store vs. flat store, and AsOf
// snapshot materialization.
func BenchmarkVersionedInsert(b *testing.B) {
	schema := gtopdb.Schema()
	b.Run("flat", func(b *testing.B) {
		db := storage.NewDB(schema)
		for i := 0; i < b.N; i++ {
			_ = db.Insert("Family", fmt.Sprint(i), "N", "gpcr")
		}
	})
	b.Run("versioned", func(b *testing.B) {
		v := storage.NewVersionedDB(schema)
		for i := 0; i < b.N; i++ {
			_ = v.Insert("Family", fmt.Sprint(i), "N", "gpcr")
			if i%1000 == 999 {
				v.Commit("")
			}
		}
	})
}

// B10 (continued) — AsOf snapshot cost.
func BenchmarkVersionedAsOf(b *testing.B) {
	v := storage.NewVersionedDB(gtopdb.Schema())
	for i := 0; i < 5000; i++ {
		v.MustInsert("Family", fmt.Sprint(i), "N", "gpcr")
		if i%500 == 499 {
			v.Commit("")
		}
	}
	versions := v.Versions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate between cached and uncached snapshot reads.
		ver := versions[i%len(versions)]
		if _, err := v.AsOf(ver); err != nil {
			b.Fatal(err)
		}
	}
}

// Baseline — the naive "cite by provenance only" strategy the paper argues
// against implicitly: annotate every base tuple and collect lineage, with no
// views. Used in EXPERIMENTS.md to contrast citation size and cost.
func BenchmarkBaselineLineageCitation(b *testing.B) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 200
	db := gtopdb.Generate(cfg)
	q := mustParse(b, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`)
	var bytes int
	for i := 0; i < b.N; i++ {
		anns, err := provenance.Annotate[provenance.Lineage](db, q, provenance.LineageSemiring{},
			func(rel string, t storage.Tuple) provenance.Lineage {
				return provenance.LineageOf(provenance.TupleToken(rel, t))
			})
		if err != nil {
			b.Fatal(err)
		}
		bytes = 0
		for _, a := range anns {
			for _, tok := range a.Value.Tokens() {
				bytes += len(tok)
			}
		}
	}
	b.ReportMetric(float64(bytes), "citation-bytes")
}

func mustParse(tb testing.TB, src string) *cq.Query {
	tb.Helper()
	q, err := datalog.ParseQuery(src)
	if err != nil {
		tb.Fatal(err)
	}
	return q
}
