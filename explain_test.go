package citare

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"citare/internal/gtopdb"
	"citare/internal/obs"
	"citare/internal/shard"
)

const explainTestSQL = "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"

// explainCiters builds one citer per evaluation configuration: unsharded
// sequential / parallel / adaptive, and sharded (scatter-gather) at two
// shard counts.
func explainCiters(t *testing.T) map[string]*Citer {
	t.Helper()
	citers := make(map[string]*Citer)
	for name, parallel := range map[string]int{"sequential": 1, "parallel4": 4, "auto": 0} {
		c, err := NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram,
			WithNeutralCitation(gtopdb.DatabaseCitation()), WithParallelEval(parallel))
		if err != nil {
			t.Fatal(err)
		}
		citers[name] = c
	}
	for _, n := range []int{2, 4} {
		sdb, err := shard.FromDB(gtopdb.PaperInstance(), n)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewShardedFromProgram(sdb, gtopdb.ViewsProgram,
			WithNeutralCitation(gtopdb.DatabaseCitation()))
		if err != nil {
			t.Fatal(err)
		}
		citers[fmt.Sprintf("scatter%d", n)] = c
	}
	return citers
}

// TestExplainParity: for every strategy and shard count, the citation is
// byte-identical with Explain on and off, and only the explained request
// carries a report.
func TestExplainParity(t *testing.T) {
	ctx := context.Background()
	for name, c := range explainCiters(t) {
		t.Run(name, func(t *testing.T) {
			plain, err := c.Cite(ctx, Request{SQL: explainTestSQL})
			if err != nil {
				t.Fatal(err)
			}
			explained, err := c.Cite(ctx, Request{SQL: explainTestSQL, Explain: true})
			if err != nil {
				t.Fatal(err)
			}
			if plain.CitationJSON() != explained.CitationJSON() {
				t.Fatalf("citation diverged under Explain:\n off %s\n on  %s",
					plain.CitationJSON(), explained.CitationJSON())
			}
			pr, _ := plain.Rendered()
			er, _ := explained.Rendered()
			if pr != er {
				t.Fatalf("rendered output diverged under Explain")
			}
			if plain.Explain() != nil {
				t.Fatal("unexplained citation carries a report")
			}
			if explained.Explain() == nil {
				t.Fatal("explained citation carries no report")
			}
		})
	}
}

// TestExplainReportShape checks the report's stage tree: the cite root with
// tuple counts, every pipeline stage present, the eval strategy recorded,
// and — under scatter-gather — per-shard spans.
func TestExplainReportShape(t *testing.T) {
	ctx := context.Background()
	citers := explainCiters(t)

	for name, wantStrategy := range map[string]string{
		"sequential": "sequential",
		"parallel4":  "parallel",
		"scatter4":   "scatter",
	} {
		t.Run(name, func(t *testing.T) {
			ct, err := citers[name].Cite(ctx, Request{SQL: explainTestSQL, Explain: true})
			if err != nil {
				t.Fatal(err)
			}
			ex := ct.Explain()
			root := ex.Stage(obs.StageCite)
			if root == nil {
				t.Fatalf("no cite root: %+v", ex.Stages)
			}
			if root.Attrs["tuples"] != int64(ct.NumTuples()) {
				t.Fatalf("root tuples attr %v, want %d", root.Attrs["tuples"], ct.NumTuples())
			}
			for _, stage := range []string{
				obs.StageParse, obs.StageRewrite, obs.StageCompile,
				obs.StageEval, obs.StageGather, obs.StageRender,
			} {
				if ex.Stage(stage) == nil {
					t.Fatalf("stage %q missing from report", stage)
				}
			}
			eval := ex.Stage(obs.StageEval)
			if got := eval.Attrs["strategy"]; got != wantStrategy {
				t.Fatalf("eval strategy %v, want %q", got, wantStrategy)
			}
			if name == "scatter4" {
				if eval.Attrs["shards"] == nil {
					t.Fatalf("scatter eval has no shards attr: %v", eval.Attrs)
				}
				shardSpans := 0
				for _, child := range eval.Children {
					if child.Name == "shard" {
						shardSpans++
					}
				}
				if shardSpans == 0 {
					t.Fatalf("scatter eval has no per-shard spans: %+v", eval.Children)
				}
			}
			// The report must serialize: the slow-query log and the /v1/cite
			// explain field both ship it as JSON.
			if _, err := json.Marshal(ex); err != nil {
				t.Fatalf("marshal explain: %v", err)
			}
			if ex.StageTotalsNs()[obs.StageEval] <= 0 {
				t.Fatalf("eval total not positive: %v", ex.StageTotalsNs())
			}
		})
	}
}

// TestExplainThroughCachedCiter: an Explain request bypasses the citation
// cache (a cached Citation carries no trace) yet returns the identical
// citation; plain requests still hit the cache.
func TestExplainThroughCachedCiter(t *testing.T) {
	ctx := context.Background()
	c, err := NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram,
		WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	cached := NewCached(c)
	plain, err := cached.Cite(ctx, Request{SQL: explainTestSQL})
	if err != nil {
		t.Fatal(err)
	}
	preHits, _ := cached.Stats()
	explained, err := cached.Cite(ctx, Request{SQL: explainTestSQL, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := cached.Stats(); hits != preHits {
		t.Fatalf("explain request touched the cache: hits %d -> %d", preHits, hits)
	}
	if explained.Explain() == nil {
		t.Fatal("explain through CachedCiter returned no report")
	}
	if plain.CitationJSON() != explained.CitationJSON() {
		t.Fatal("explained citation diverged from cached citation")
	}
	again, err := cached.Cite(ctx, Request{SQL: explainTestSQL})
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := cached.Stats(); hits != preHits+1 {
		t.Fatalf("plain request after explain missed the cache")
	}
	if again.Explain() != nil {
		t.Fatal("cached citation carries a stale report")
	}
}
