package citare

import (
	"encoding/json"
	"strings"
	"testing"

	"citare/internal/format"
	"citare/internal/gtopdb"
)

func newPaperCiter(t testing.TB, opts ...Option) *Citer {
	t.Helper()
	c, err := NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEndToEndSQL(t *testing.T) {
	c := newPaperCiter(t)
	res, err := c.CiteSQL(`SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTuples() != 3 {
		t.Fatalf("want 3 gpcr families with intros, got %d: %v", res.NumTuples(), res.Rows())
	}
	if len(res.Rewritings()) == 0 {
		t.Fatal("no rewritings reported")
	}
	var parsed any
	if err := json.Unmarshal([]byte(res.CitationJSON()), &parsed); err != nil {
		t.Fatalf("invalid citation JSON: %v", err)
	}
}

func TestEndToEndDatalog(t *testing.T) {
	c := newPaperCiter(t)
	res, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTuples() != 3 {
		t.Fatalf("tuples: %v", res.Rows())
	}
	// Tuple "b" carries the paper's Example 3.3 polynomial pieces.
	var bIdx = -1
	for i, row := range res.Rows() {
		if row[0] == "b" {
			bIdx = i
		}
	}
	if bIdx < 0 {
		t.Fatal("tuple b missing")
	}
	// Under the default policy, order pruning keeps the most compact
	// citation: the single-view V5("gpcr") rewriting.
	if poly := res.TuplePolynomial(bIdx); poly != `V5("gpcr")` {
		t.Fatalf("default policy should prune to V5(gpcr): %s", poly)
	}
	if res.TupleCitationJSON(bIdx) == "" {
		t.Fatal("tuple citation missing")
	}
	// Without pruning, the alternative rewritings survive (Example 3.3).
	plain := Policy{Times: Join, Plus: Union, PlusR: Union, Agg: Union}
	c2 := newPaperCiter(t, WithPolicy(plain))
	res2, err := c2.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	if err != nil {
		t.Fatal(err)
	}
	if poly := res2.TuplePolynomial(bIdx); !strings.Contains(poly, `V2("13")`) {
		t.Fatalf("plain policy should keep V2(13) alternatives: %s", poly)
	}
	if res.TuplePolynomial(99) != "" || res.TupleCitationJSON(-1) != "" {
		t.Fatal("out-of-range accessors must return empty strings")
	}
}

func TestSQLAndDatalogAgree(t *testing.T) {
	c := newPaperCiter(t)
	a, err := c.CiteSQL(`SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	if err != nil {
		t.Fatal(err)
	}
	if a.CitationJSON() != b.CitationJSON() {
		t.Fatalf("front ends disagree:\n%s\n%s", a.CitationJSON(), b.CitationJSON())
	}
}

func TestNeutralCitationOption(t *testing.T) {
	c := newPaperCiter(t, WithNeutralCitation(gtopdb.DatabaseCitation()))
	res, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "nope"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTuples() != 0 {
		t.Fatal("expected empty result")
	}
	if !strings.Contains(res.CitationJSON(), "IUPHAR") {
		t.Fatalf("neutral citation missing: %s", res.CitationJSON())
	}
}

func TestWithPolicyOption(t *testing.T) {
	pol := Policy{
		Times: Join, Plus: Union, PlusR: Union, Agg: Union,
		IdempotentPlus:      true,
		PreferredRewritings: true,
	}
	c := newPaperCiter(t, WithPolicy(pol))
	res, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr"`)
	if err != nil {
		t.Fatal(err)
	}
	// §2.3 preference keeps V4("gpcr"); idempotent union-Agg collapses to a
	// single record.
	if !strings.HasPrefix(res.CitationJSON(), "{") {
		t.Fatalf("expected one collapsed citation record: %s", res.CitationJSON())
	}
}

func TestRenderFormats(t *testing.T) {
	c := newPaperCiter(t)
	res, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), F = "11"`)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"json", "json-compact", "xml", "bibtex", "text"} {
		out, err := res.Render(name)
		if err != nil {
			t.Fatalf("render %s: %v", name, err)
		}
		if out == "" {
			t.Fatalf("render %s: empty output", name)
		}
	}
	if _, err := res.Render("yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestParseErrorsSurface(t *testing.T) {
	c := newPaperCiter(t)
	if _, err := c.CiteSQL(`SELECT nope FROM Nope`); err == nil {
		t.Fatal("bad SQL accepted")
	}
	if _, err := c.CiteDatalog(`Q(X) :- `); err == nil {
		t.Fatal("bad datalog accepted")
	}
	if _, err := NewFromProgram(gtopdb.PaperInstance(), `view broken(`); err == nil {
		t.Fatal("bad views program accepted")
	}
}

func TestResetPicksUpUpdates(t *testing.T) {
	db := gtopdb.PaperInstance()
	c, err := NewFromProgram(db, gtopdb.ViewsProgram)
	if err != nil {
		t.Fatal(err)
	}
	before, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr"`)
	if err != nil {
		t.Fatal(err)
	}
	db.MustInsert("Family", "77", "Added", "gpcr")
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	after, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr"`)
	if err != nil {
		t.Fatal(err)
	}
	if after.NumTuples() != before.NumTuples()+1 {
		t.Fatalf("reset missed the update: %d vs %d", after.NumTuples(), before.NumTuples())
	}
}

func TestCustomNeutralPlusFormat(t *testing.T) {
	neutral := format.NewObject().Set("Database", format.S("demo"))
	c := newPaperCiter(t, WithNeutralCitation(neutral))
	res, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), F = "11"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.CitationJSON(), `"Database": "demo"`) {
		t.Fatalf("neutral missing from aggregate: %s", res.CitationJSON())
	}
	if s := res.String(); !strings.Contains(s, "tuples") {
		t.Fatalf("String(): %s", s)
	}
}
