package citare

// B11–B13 — concurrency benchmarks for the parallel read path: parallel
// binding enumeration speedup, shared-engine throughput under concurrent
// Cite load (lock contention), and snapshot cost.

import (
	"fmt"
	"runtime"
	"testing"

	"citare/internal/eval"
	"citare/internal/gtopdb"
	"citare/internal/workload"
)

// B11 — parallel EvalBindings speedup over the sequential evaluator on the
// gtopdb and chain workloads. workers=1 is the sequential baseline.
func BenchmarkParallelEval(b *testing.B) {
	workers := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workers = append(workers, p)
	}

	cfg := gtopdb.DefaultConfig()
	cfg.Families = 3000
	gdb := gtopdb.Generate(cfg)
	committee := workload.GtoPdbQueries()[2] // Family ⋈ FC ⋈ Person
	cdb := workload.ChainDB(3, 1500, 64, 7)
	chain := workload.ChainQuery(3)

	for _, w := range workers {
		w := w
		b.Run(fmt.Sprintf("gtopdb-committee/workers=%d", w), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				res, err := eval.EvalOpts(gdb, committee, eval.Options{Parallel: w})
				if err != nil {
					b.Fatal(err)
				}
				n = len(res.Tuples)
			}
			b.ReportMetric(float64(n), "out-tuples")
		})
	}
	for _, w := range workers {
		w := w
		b.Run(fmt.Sprintf("chain3/workers=%d", w), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				res, err := eval.EvalOpts(cdb, chain, eval.Options{Parallel: w})
				if err != nil {
					b.Fatal(err)
				}
				n = len(res.Tuples)
			}
			b.ReportMetric(float64(n), "out-tuples")
		})
	}
}

// B12 — shared-engine throughput under concurrent Cite load: one engine,
// GOMAXPROCS client goroutines, mixed query set. Compares against the same
// engine driven from a single goroutine to expose lock contention.
func BenchmarkConcurrentCite(b *testing.B) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 400
	db := gtopdb.Generate(cfg)
	queries := []string{
		`Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`,
		`Q(N) :- Family(F, N, Ty), Ty = "type-02"`,
		`Q(N, Pn) :- Family(F, N, Ty), FC(F, P), Person(P, Pn, A), Ty = "type-03"`,
	}
	for _, mode := range []string{"serial", "concurrent"} {
		b.Run(mode, func(b *testing.B) {
			c, err := NewFromProgram(db, gtopdb.ViewsProgram)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-materialize views so both modes measure steady state.
			if _, err := c.CiteDatalog(queries[0]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if mode == "serial" {
				for i := 0; i < b.N; i++ {
					if _, err := c.CiteDatalog(queries[i%len(queries)]); err != nil {
						b.Fatal(err)
					}
				}
				return
			}
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := c.CiteDatalog(queries[i%len(queries)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// B12 (continued) — cached engine under the same concurrent load: after
// warmup every request is a cache hit, measuring pure cache contention.
func BenchmarkConcurrentCachedCite(b *testing.B) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 400
	db := gtopdb.Generate(cfg)
	base, err := NewFromProgram(db, gtopdb.ViewsProgram)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCached(base)
	query := `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`
	if _, err := c.CiteDatalog(query); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.CiteDatalog(query); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// B13 — snapshot cost: taking a snapshot is O(relations), and the first
// write after a snapshot pays the copy-on-write clone.
func BenchmarkSnapshot(b *testing.B) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 2000
	db := gtopdb.Generate(cfg)
	b.Run("take", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = db.Snapshot()
		}
	})
	b.Run("take+first-write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = db.Snapshot()
			db.MustInsert("Family", fmt.Sprintf("s%d", i), "N", "type-01")
		}
	})
}
